//! The simplified project-server model (§4.3c: "BOINC schedulers are
//! simulated with a simplified model").
//!
//! Each attached project gets one `ProjectServer`. It answers scheduler
//! RPCs by drawing jobs from the project's app classes, tracks in-progress
//! results with their deadlines, re-issues results whose deadline passes
//! (the server-side deadline check), and models downtime and no-work
//! periods.

use crate::factory::JobFactory;
use crate::rpc::{RpcOutcome, SchedulerReply, SchedulerRequest};
use bce_avail::{OnOffProcess, OnOffSpec};
use bce_sim::Rng;
use bce_types::{
    AppId, JobId, JobSpec, ProcType, ProjectId, ProjectSpec, ServerUptime, SimDuration, SimTime,
    WorkSupply,
};
use std::collections::BTreeMap;

/// The server-side deadline-check policy — one of the three policy axes
/// BCE takes as input ("a set of flags selecting the job scheduling, job
/// fetch, and server deadline-check policies", §4.3).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum DeadlineCheckPolicy {
    /// Re-issue the instant the deadline passes; late results get no
    /// credit (the behaviour the paper's figures assume).
    Strict,
    /// Tolerate lateness up to the grace period before re-issuing; late
    /// results inside the grace window still count.
    Grace(SimDuration),
    /// Never re-issue; every completed result counts (wasteful server
    /// side, forgiving client side).
    None,
}

impl DeadlineCheckPolicy {
    /// The instant after which a result with `deadline` is considered
    /// dead by the server.
    pub fn expiry(&self, deadline: SimTime) -> SimTime {
        match self {
            DeadlineCheckPolicy::Strict => deadline,
            DeadlineCheckPolicy::Grace(g) => deadline + *g,
            DeadlineCheckPolicy::None => SimTime::FAR_FUTURE,
        }
    }

    pub fn name(&self) -> String {
        match self {
            DeadlineCheckPolicy::Strict => "DC-STRICT".into(),
            DeadlineCheckPolicy::Grace(g) => format!("DC-GRACE({g})"),
            DeadlineCheckPolicy::None => "DC-NONE".into(),
        }
    }
}

/// Server tuning knobs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ServerConfig {
    /// Upper bound on jobs handed out per RPC (the real scheduler's reply
    /// is bounded by its shared-memory job cache).
    pub max_jobs_per_rpc: usize,
    /// Minimum delay the reply imposes before the next RPC.
    pub min_rpc_delay: SimDuration,
    /// Delay imposed when the server has no work.
    pub no_work_delay: SimDuration,
    /// How lateness is judged at report time (§4.3's third policy axis).
    pub deadline_check: DeadlineCheckPolicy,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            max_jobs_per_rpc: 64,
            min_rpc_delay: SimDuration::from_secs(60.0),
            no_work_delay: SimDuration::from_secs(600.0),
            deadline_check: DeadlineCheckPolicy::Strict,
        }
    }
}

/// Dispatch/report counters, used by the figures of merit (RPCs per job)
/// and by tests.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct ServerStats {
    /// RPCs that reached the server (including empty-handed ones).
    pub rpcs: u64,
    /// RPCs that found the server down.
    pub failed_rpcs: u64,
    pub jobs_dispatched: u64,
    pub reported_in_time: u64,
    pub reported_late: u64,
    /// Results whose deadline passed server-side (re-issued elsewhere).
    pub timed_out: u64,
    /// Results the client reported as permanently failed (e.g. transfer
    /// retries exhausted); re-issued elsewhere in a real deployment.
    pub errored: u64,
}

/// One project's simulated server.
pub struct ProjectServer {
    spec: ProjectSpec,
    config: ServerConfig,
    factory: JobFactory,
    uptime: Option<OnOffProcess>,
    supply: Option<OnOffProcess>,
    /// §6.2: sporadic availability of particular job types.
    app_supply: Vec<(AppId, OnOffProcess)>,
    batch_remaining: Option<u64>,
    in_progress: BTreeMap<JobId, SimTime>,
    stats: ServerStats,
}

impl ProjectServer {
    pub fn new(spec: ProjectSpec, config: ServerConfig, rng: &mut Rng) -> Self {
        let uptime = match spec.uptime {
            ServerUptime::AlwaysUp => None,
            ServerUptime::Sporadic { up_mean, down_mean } => Some(
                OnOffSpec::Exponential { up_mean, down_mean, start_on: true }
                    .instantiate(rng.fork("uptime")),
            ),
        };
        let (supply, batch_remaining) = match spec.supply {
            WorkSupply::Unlimited => (None, None),
            WorkSupply::Sporadic { work_mean, dry_mean } => (
                Some(
                    OnOffSpec::Exponential {
                        up_mean: work_mean,
                        down_mean: dry_mean,
                        start_on: true,
                    }
                    .instantiate(rng.fork("supply")),
                ),
                None,
            ),
            WorkSupply::Batch { njobs } => (None, Some(njobs)),
        };
        let app_supply: Vec<(AppId, OnOffProcess)> = spec
            .apps
            .iter()
            .filter_map(|a| {
                a.supply.map(|sp| {
                    let proc = OnOffSpec::Exponential {
                        up_mean: sp.work_mean,
                        down_mean: sp.dry_mean,
                        start_on: true,
                    }
                    .instantiate(rng.fork(&format!("app-supply-{}", a.id)));
                    (a.id, proc)
                })
            })
            .collect();
        let factory = JobFactory::new(spec.id, rng.fork("jobs"));
        ProjectServer {
            spec,
            config,
            factory,
            uptime,
            supply,
            app_supply,
            batch_remaining,
            in_progress: BTreeMap::new(),
            stats: ServerStats::default(),
        }
    }

    pub fn id(&self) -> ProjectId {
        self.spec.id
    }

    pub fn spec(&self) -> &ProjectSpec {
        &self.spec
    }

    pub fn stats(&self) -> &ServerStats {
        &self.stats
    }

    pub fn is_up(&mut self, now: SimTime) -> bool {
        match &mut self.uptime {
            None => true,
            Some(p) => {
                p.advance(now);
                p.state()
            }
        }
    }

    fn has_work(&mut self, now: SimTime) -> bool {
        if let Some(rem) = self.batch_remaining {
            if rem == 0 {
                return false;
            }
        }
        match &mut self.supply {
            None => true,
            Some(p) => {
                p.advance(now);
                p.state()
            }
        }
    }

    /// Is this app class currently supplying jobs?
    fn app_has_work(&mut self, app: AppId, now: SimTime) -> bool {
        match self.app_supply.iter_mut().find(|(id, _)| *id == app) {
            None => true,
            Some((_, p)) => {
                p.advance(now);
                p.state()
            }
        }
    }

    /// Create a job that was dispatched *before* the emulation started
    /// (an imported in-flight result): sampled from the named app class,
    /// registered in progress with its historical receipt time.
    pub fn make_initial_job(
        &mut self,
        app: bce_types::AppId,
        received: SimTime,
    ) -> Option<JobSpec> {
        let idx = self.spec.apps.iter().position(|a| a.id == app)?;
        let template = self.spec.apps[idx].clone();
        let job = self.factory.make_job(&template, received);
        self.in_progress.insert(job.id, job.deadline());
        self.stats.jobs_dispatched += 1;
        Some(job)
    }

    /// Handle a scheduler RPC (§3: "each RPC can report completed jobs and
    /// request new jobs"). Fills the per-type requested instance-seconds /
    /// idle instances greedily from the project's app classes.
    pub fn handle_rpc(&mut self, now: SimTime, req: &SchedulerRequest) -> RpcOutcome {
        if !self.is_up(now) {
            self.stats.failed_rpcs += 1;
            return RpcOutcome::Down;
        }
        self.stats.rpcs += 1;

        let mut jobs: Vec<JobSpec> = Vec::new();
        if self.has_work(now) {
            for t in ProcType::ALL {
                let r = req.per_type[t];
                if r.is_empty() {
                    continue;
                }
                let mut secs_filled = 0.0;
                let mut inst_filled = 0.0;
                while (secs_filled < r.secs || inst_filled < r.instances)
                    && jobs.len() < self.config.max_jobs_per_rpc
                {
                    if let Some(rem) = self.batch_remaining {
                        if rem == 0 {
                            break;
                        }
                    }
                    // Evaluate per-app-class supply first (the closure
                    // passed to pick_app cannot borrow self mutably).
                    let available: Vec<AppId> = self
                        .spec
                        .apps
                        .iter()
                        .map(|a| a.id)
                        .collect::<Vec<_>>()
                        .into_iter()
                        .filter(|&id| self.app_has_work(id, now))
                        .collect();
                    let Some(idx) = self.factory.pick_app(&self.spec.apps, |a| {
                        a.usage.main_proc_type() == t && available.contains(&a.id)
                    }) else {
                        break;
                    };
                    let app = self.spec.apps[idx].clone();
                    let job = self.factory.make_job(&app, now);
                    let inst = job.usage.instances_of(t).max(1e-6);
                    secs_filled += job.duration_est.secs() * inst;
                    inst_filled += inst;
                    self.in_progress.insert(job.id, job.deadline());
                    if let Some(rem) = &mut self.batch_remaining {
                        *rem -= 1;
                    }
                    jobs.push(job);
                }
            }
        }

        self.stats.jobs_dispatched += jobs.len() as u64;
        let delay = if jobs.is_empty() && !req.is_empty() {
            // Nothing to give: back the client off harder.
            self.config.no_work_delay
        } else {
            self.config.min_rpc_delay
        };
        RpcOutcome::Reply(SchedulerReply { jobs, delay })
    }

    /// Client reports a completed result. Returns whether the server
    /// grants credit under its deadline-check policy (a result past its
    /// expiry — or already re-issued — gets none).
    pub fn report_completed(&mut self, now: SimTime, job: JobId) -> bool {
        match self.in_progress.remove(&job) {
            Some(deadline) if now <= self.config.deadline_check.expiry(deadline) => {
                self.stats.reported_in_time += 1;
                true
            }
            _ => {
                self.stats.reported_late += 1;
                false
            }
        }
    }

    /// Client reports a permanent job failure (retry budget exhausted):
    /// the result is abandoned; a real server would issue a new instance
    /// to another host.
    pub fn report_errored(&mut self, job: JobId) {
        if self.in_progress.remove(&job).is_some() {
            self.stats.errored += 1;
        }
    }

    /// Server-side deadline check: drop and count results whose expiry
    /// (deadline plus any grace) has passed. The real server would issue a
    /// new instance to another host; in a single-host emulation the work
    /// is simply counted wasted.
    pub fn check_deadlines(&mut self, now: SimTime) -> Vec<JobId> {
        let policy = self.config.deadline_check;
        let expired: Vec<JobId> = self
            .in_progress
            .iter()
            .filter(|(_, &dl)| policy.expiry(dl) < now)
            .map(|(&id, _)| id)
            .collect();
        for id in &expired {
            self.in_progress.remove(id);
        }
        self.stats.timed_out += expired.len() as u64;
        expired
    }

    /// Earliest deadline among in-progress results (for event scheduling).
    pub fn next_deadline(&self) -> Option<SimTime> {
        self.in_progress.values().copied().min()
    }

    pub fn in_progress_count(&self) -> usize {
        self.in_progress.len()
    }

    /// Capture the server's complete mutable state, for checkpointing.
    pub fn snapshot(&self) -> ServerSnapshot {
        let (factory_next_seq, factory_rng) = self.factory.snapshot();
        ServerSnapshot {
            factory_next_seq,
            factory_rng,
            uptime: self.uptime.as_ref().map(|p| p.snapshot()),
            supply: self.supply.as_ref().map(|p| p.snapshot()),
            app_supply: self.app_supply.iter().map(|(id, p)| (*id, p.snapshot())).collect(),
            batch_remaining: self.batch_remaining,
            in_progress: self.in_progress.iter().map(|(&id, &dl)| (id, dl)).collect(),
            stats: self.stats,
        }
    }

    /// Overwrite the mutable state of a freshly constructed server with a
    /// captured snapshot. The server must have been built from the same
    /// `ProjectSpec`/`ServerConfig` (so the process specs match); every RNG
    /// position and counter is replaced wholesale.
    pub fn restore_snapshot(&mut self, snap: &ServerSnapshot) {
        self.factory.restore_parts(snap.factory_next_seq, snap.factory_rng.clone());
        if let (Some(p), Some((rng, state, next))) = (self.uptime.as_mut(), snap.uptime.as_ref()) {
            *p = OnOffProcess::from_parts(*p.spec(), rng.clone(), *state, *next);
        }
        if let (Some(p), Some((rng, state, next))) = (self.supply.as_mut(), snap.supply.as_ref()) {
            *p = OnOffProcess::from_parts(*p.spec(), rng.clone(), *state, *next);
        }
        for (id, (rng, state, next)) in &snap.app_supply {
            if let Some((_, p)) = self.app_supply.iter_mut().find(|(a, _)| a == id) {
                *p = OnOffProcess::from_parts(*p.spec(), rng.clone(), *state, *next);
            }
        }
        self.batch_remaining = snap.batch_remaining;
        self.in_progress = snap.in_progress.iter().copied().collect();
        self.stats = snap.stats;
    }
}

/// Complete mutable state of one [`ProjectServer`], as captured by
/// [`ProjectServer::snapshot`]. On/off processes are `(rng, state,
/// next_transition)` triples.
#[derive(Debug, Clone)]
pub struct ServerSnapshot {
    pub factory_next_seq: u64,
    pub factory_rng: Rng,
    pub uptime: Option<(Rng, bool, SimTime)>,
    pub supply: Option<(Rng, bool, SimTime)>,
    pub app_supply: Vec<(AppId, (Rng, bool, SimTime))>,
    pub batch_remaining: Option<u64>,
    pub in_progress: Vec<(JobId, SimTime)>,
    pub stats: ServerStats,
}

#[cfg(test)]
mod tests {
    use super::*;
    use bce_types::{AppClass, SimDuration};

    fn spec() -> ProjectSpec {
        ProjectSpec::new(0, "p", 100.0).with_app(AppClass::cpu(
            0,
            SimDuration::from_secs(1000.0),
            SimDuration::from_hours(2.0),
        ))
    }

    fn req_cpu(secs: f64, instances: f64) -> SchedulerRequest {
        let mut r = SchedulerRequest::default();
        r.per_type[ProcType::Cpu] = crate::rpc::TypeRequest { secs, instances };
        r
    }

    fn server(spec: ProjectSpec) -> ProjectServer {
        ProjectServer::new(spec, ServerConfig::default(), &mut Rng::from_seed(9))
    }

    #[test]
    fn fills_requested_seconds() {
        let mut s = server(spec());
        let out = s.handle_rpc(SimTime::ZERO, &req_cpu(3500.0, 0.0));
        let RpcOutcome::Reply(reply) = out else { panic!("down?") };
        // ~1000 s jobs: needs 4 to cover 3500 instance-seconds.
        assert_eq!(reply.jobs.len(), 4);
        assert_eq!(s.stats().jobs_dispatched, 4);
        assert_eq!(s.in_progress_count(), 4);
    }

    #[test]
    fn fills_requested_instances() {
        let mut s = server(spec());
        let RpcOutcome::Reply(reply) = s.handle_rpc(SimTime::ZERO, &req_cpu(0.0, 2.0)) else {
            panic!()
        };
        assert_eq!(reply.jobs.len(), 2);
    }

    #[test]
    fn empty_request_gets_no_jobs() {
        let mut s = server(spec());
        let RpcOutcome::Reply(reply) = s.handle_rpc(SimTime::ZERO, &SchedulerRequest::default())
        else {
            panic!()
        };
        assert!(reply.jobs.is_empty());
        assert_eq!(reply.delay, ServerConfig::default().min_rpc_delay);
    }

    #[test]
    fn max_jobs_per_rpc_caps_reply() {
        let cfg = ServerConfig { max_jobs_per_rpc: 3, ..Default::default() };
        let mut s = ProjectServer::new(spec(), cfg, &mut Rng::from_seed(1));
        let RpcOutcome::Reply(reply) = s.handle_rpc(SimTime::ZERO, &req_cpu(1e9, 0.0)) else {
            panic!()
        };
        assert_eq!(reply.jobs.len(), 3);
    }

    #[test]
    fn no_apps_for_requested_type() {
        let mut s = server(spec());
        let mut r = SchedulerRequest::default();
        r.per_type[ProcType::NvidiaGpu] = crate::rpc::TypeRequest { secs: 1000.0, instances: 1.0 };
        let RpcOutcome::Reply(reply) = s.handle_rpc(SimTime::ZERO, &r) else { panic!() };
        assert!(reply.jobs.is_empty());
        // Non-empty request unfilled => no-work backoff delay.
        assert_eq!(reply.delay, ServerConfig::default().no_work_delay);
    }

    #[test]
    fn batch_supply_runs_dry() {
        let mut s = server(spec().with_supply(WorkSupply::Batch { njobs: 2 }));
        let RpcOutcome::Reply(r1) = s.handle_rpc(SimTime::ZERO, &req_cpu(1e5, 0.0)) else {
            panic!()
        };
        assert_eq!(r1.jobs.len(), 2);
        let RpcOutcome::Reply(r2) = s.handle_rpc(SimTime::ZERO, &req_cpu(1e5, 0.0)) else {
            panic!()
        };
        assert!(r2.jobs.is_empty());
    }

    #[test]
    fn downtime_fails_rpcs() {
        let s = spec().with_uptime(ServerUptime::Sporadic {
            up_mean: SimDuration::from_secs(1.0),
            down_mean: SimDuration::from_secs(1e9),
        });
        let mut srv = server(s);
        // Advance far: with up_mean 1 s and down_mean 1e9 s the server is
        // almost surely down at t = 1e6.
        let out = srv.handle_rpc(SimTime::from_secs(1e6), &req_cpu(10.0, 0.0));
        assert_eq!(out, RpcOutcome::Down);
        assert_eq!(srv.stats().failed_rpcs, 1);
    }

    #[test]
    fn deadline_check_expires_results() {
        let mut s = server(spec());
        let RpcOutcome::Reply(reply) = s.handle_rpc(SimTime::ZERO, &req_cpu(1000.0, 0.0)) else {
            panic!()
        };
        let id = reply.jobs[0].id;
        let dl = reply.jobs[0].deadline();
        assert_eq!(s.next_deadline(), Some(dl));
        let expired = s.check_deadlines(dl + SimDuration::from_secs(1.0));
        assert!(expired.contains(&id));
        assert_eq!(s.stats().timed_out as usize, expired.len());
        // Late report after expiry is counted late.
        assert!(!s.report_completed(dl + SimDuration::from_secs(2.0), id));
        assert_eq!(s.stats().reported_late, 1);
    }

    #[test]
    fn errored_report_abandons_result() {
        let mut s = server(spec());
        let RpcOutcome::Reply(reply) = s.handle_rpc(SimTime::ZERO, &req_cpu(1000.0, 0.0)) else {
            panic!()
        };
        let id = reply.jobs[0].id;
        s.report_errored(id);
        assert_eq!(s.stats().errored, 1);
        assert_eq!(s.in_progress_count(), reply.jobs.len() - 1);
        // Double-report is a no-op.
        s.report_errored(id);
        assert_eq!(s.stats().errored, 1);
    }

    #[test]
    fn in_time_report() {
        let mut s = server(spec());
        let RpcOutcome::Reply(reply) = s.handle_rpc(SimTime::ZERO, &req_cpu(1000.0, 0.0)) else {
            panic!()
        };
        let id = reply.jobs[0].id;
        assert!(s.report_completed(SimTime::from_secs(100.0), id));
        assert_eq!(s.stats().reported_in_time, 1);
        assert_eq!(s.in_progress_count(), reply.jobs.len() - 1);
    }
}

//! Job generation: turns an [`AppClass`] template into concrete jobs with
//! normally-distributed runtimes (§4.3a) and modelled estimate errors.

use bce_sim::{Distribution, Normal, Rng, TruncatedNormal};
use bce_types::{AppClass, AppId, EstErrorModel, JobId, JobSpec, ProjectId, SimDuration, SimTime};

/// Stateful generator of jobs for one project.
#[derive(Debug, Clone)]
pub struct JobFactory {
    project: ProjectId,
    next_seq: u64,
    rng: Rng,
}

impl JobFactory {
    pub fn new(project: ProjectId, rng: Rng) -> Self {
        JobFactory { project, next_seq: 0, rng }
    }

    /// Job ids carry the project in their upper bits so they are unique
    /// across the whole emulation without central coordination.
    fn next_id(&mut self) -> JobId {
        let id = ((self.project.0 as u64) << 40) | self.next_seq;
        self.next_seq += 1;
        JobId(id)
    }

    /// Draw one job from `app`, received by the client at `now`.
    pub fn make_job(&mut self, app: &AppClass, now: SimTime) -> JobSpec {
        let mean = app.runtime_mean.secs();
        let actual = if app.runtime_cv > 0.0 {
            TruncatedNormal::positive(mean, app.runtime_cv * mean).sample(&mut self.rng)
        } else {
            mean
        };
        let est = match app.est_error {
            EstErrorModel::Exact => actual,
            EstErrorModel::Systematic { factor } => actual * factor,
            EstErrorModel::LogNormal { sigma } => {
                actual * (sigma * Normal::std_sample(&mut self.rng)).exp()
            }
        };
        JobSpec {
            id: self.next_id(),
            project: self.project,
            app: app.id,
            usage: app.usage,
            duration: SimDuration::from_secs(actual),
            duration_est: SimDuration::from_secs(est.max(1e-3)),
            latency_bound: app.latency_bound,
            checkpoint_period: app.checkpoint_period,
            working_set_bytes: app.working_set_bytes,
            input_bytes: app.input_bytes,
            output_bytes: app.output_bytes,
            received: now,
        }
    }

    /// Raw generator state `(next_seq, rng)`, for checkpointing.
    pub fn snapshot(&self) -> (u64, Rng) {
        (self.next_seq, self.rng.clone())
    }

    /// Overwrite the generator state (checkpoint restore).
    pub fn restore_parts(&mut self, next_seq: u64, rng: Rng) {
        self.next_seq = next_seq;
        self.rng = rng;
    }

    /// Pick an app class by weight among those matching a predicate.
    /// Returns the index into `apps`.
    pub fn pick_app(
        &mut self,
        apps: &[AppClass],
        pred: impl Fn(&AppClass) -> bool,
    ) -> Option<usize> {
        let candidates: Vec<usize> =
            (0..apps.len()).filter(|&i| pred(&apps[i]) && apps[i].weight > 0.0).collect();
        if candidates.is_empty() {
            return None;
        }
        let weights: Vec<f64> = candidates.iter().map(|&i| apps[i].weight).collect();
        Some(candidates[self.rng.pick_weighted(&weights)])
    }
}

/// Convenience used across the workspace in tests: an `AppId`-indexed find.
pub fn app_by_id(apps: &[AppClass], id: AppId) -> Option<&AppClass> {
    apps.iter().find(|a| a.id == id)
}

#[cfg(test)]
mod tests {
    use super::*;
    use bce_types::ProcType;

    fn factory() -> JobFactory {
        JobFactory::new(ProjectId(3), Rng::from_seed(42))
    }

    fn app() -> AppClass {
        AppClass::cpu(0, SimDuration::from_secs(1000.0), SimDuration::from_hours(6.0))
    }

    #[test]
    fn ids_unique_and_carry_project() {
        let mut f = factory();
        let a = app();
        let j1 = f.make_job(&a, SimTime::ZERO);
        let j2 = f.make_job(&a, SimTime::ZERO);
        assert_ne!(j1.id, j2.id);
        assert_eq!(j1.id.0 >> 40, 3);
        assert_eq!(j1.project, ProjectId(3));
    }

    #[test]
    fn runtimes_follow_distribution() {
        let mut f = factory();
        let a = app().with_cv(0.1);
        let durations: Vec<f64> =
            (0..2000).map(|_| f.make_job(&a, SimTime::ZERO).duration.secs()).collect();
        let mean = durations.iter().sum::<f64>() / durations.len() as f64;
        assert!((mean - 1000.0).abs() < 20.0, "mean {mean}");
        assert!(durations.iter().all(|&d| d > 0.0));
    }

    #[test]
    fn zero_cv_is_deterministic() {
        let mut f = factory();
        let a = app().with_cv(0.0);
        for _ in 0..10 {
            assert_eq!(f.make_job(&a, SimTime::ZERO).duration.secs(), 1000.0);
        }
    }

    #[test]
    fn exact_estimates_match_actual() {
        let mut f = factory();
        let a = app().with_cv(0.2);
        for _ in 0..100 {
            let j = f.make_job(&a, SimTime::ZERO);
            assert_eq!(j.duration, j.duration_est);
        }
    }

    #[test]
    fn systematic_estimate_error() {
        let mut f = factory();
        let a = app().with_est_error(EstErrorModel::Systematic { factor: 2.0 });
        let j = f.make_job(&a, SimTime::ZERO);
        assert!((j.duration_est.secs() / j.duration.secs() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn lognormal_estimate_error_is_unbiased_in_log() {
        let mut f = factory();
        let a = app().with_est_error(EstErrorModel::LogNormal { sigma: 0.3 });
        let ratios: Vec<f64> = (0..5000)
            .map(|_| {
                let j = f.make_job(&a, SimTime::ZERO);
                (j.duration_est.secs() / j.duration.secs()).ln()
            })
            .collect();
        let mean = ratios.iter().sum::<f64>() / ratios.len() as f64;
        assert!(mean.abs() < 0.02, "log-ratio mean {mean}");
    }

    #[test]
    fn weighted_app_pick() {
        let mut f = factory();
        let apps = vec![
            app().with_weight(1.0),
            AppClass::gpu(
                1,
                ProcType::NvidiaGpu,
                SimDuration::from_secs(10.0),
                SimDuration::from_secs(100.0),
            )
            .with_weight(3.0),
        ];
        let mut gpu_picks = 0;
        for _ in 0..1000 {
            let i = f.pick_app(&apps, |_| true).unwrap();
            if apps[i].usage.is_gpu_job() {
                gpu_picks += 1;
            }
        }
        assert!((600..900).contains(&gpu_picks), "gpu_picks {gpu_picks}");
        // Predicate filtering
        let only_cpu = f.pick_app(&apps, |a| !a.usage.is_gpu_job()).unwrap();
        assert_eq!(only_cpu, 0);
        assert!(f.pick_app(&apps, |_| false).is_none());
    }

    #[test]
    fn received_time_propagates() {
        let mut f = factory();
        let t = SimTime::from_secs(777.0);
        let j = f.make_job(&app(), t);
        assert_eq!(j.received, t);
        assert_eq!(j.deadline(), t + SimDuration::from_hours(6.0));
    }
}

//! # bce-server — simulated project servers
//!
//! §4.3c of the paper: "BOINC schedulers are simulated with a simplified
//! model." Each attached project gets a [`ProjectServer`] that answers
//! scheduler RPCs with jobs drawn from the project's application classes,
//! enforces the server-side deadline check (re-issue on miss), and models
//! maintenance downtime and no-work periods.

pub mod factory;
pub mod rpc;
pub mod server;

pub use factory::JobFactory;
pub use rpc::{RpcOutcome, SchedulerReply, SchedulerRequest, TypeRequest};
pub use server::{DeadlineCheckPolicy, ProjectServer, ServerConfig, ServerSnapshot, ServerStats};

//! Scheduler-RPC messages (§3.4).
//!
//! BOINC is pull-based: all communication is initiated by the client. A
//! scheduler RPC carries, per processor type, how many instance-seconds of
//! work and how many idle instances the client wants filled; the reply
//! carries jobs and a minimum delay before the next RPC.

use bce_types::{JobSpec, ProcMap, SimDuration};

/// Per-processor-type work request (§3.4): `instances(T)` and `secs(T)`.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct TypeRequest {
    /// Requested instance-seconds of work for this type.
    pub secs: f64,
    /// Number of currently idle instances the client wants covered.
    pub instances: f64,
}

impl TypeRequest {
    pub fn is_empty(&self) -> bool {
        self.secs <= 0.0 && self.instances <= 0.0
    }
}

/// A work-request message.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SchedulerRequest {
    pub per_type: ProcMap<TypeRequest>,
}

impl SchedulerRequest {
    pub fn is_empty(&self) -> bool {
        self.per_type.iter().all(|(_, r)| r.is_empty())
    }
}

/// A scheduler reply.
#[derive(Debug, Clone, PartialEq)]
pub struct SchedulerReply {
    pub jobs: Vec<JobSpec>,
    /// Don't contact this server again before this much time passes.
    pub delay: SimDuration,
}

/// Outcome of attempting an RPC.
#[derive(Debug, Clone, PartialEq)]
pub enum RpcOutcome {
    Reply(SchedulerReply),
    /// Server unreachable (down for maintenance): a *scheduled* outage,
    /// escalating the client's ordinary per-project backoff.
    Down,
    /// The request was lost in transit (injected fault): a *transient*
    /// failure, taking the client's communication-retry backoff path
    /// rather than the scheduled-downtime one.
    TransientFailure,
}

#[cfg(test)]
mod tests {
    use super::*;
    use bce_types::ProcType;

    #[test]
    fn emptiness() {
        let mut req = SchedulerRequest::default();
        assert!(req.is_empty());
        req.per_type[ProcType::Cpu].secs = 100.0;
        assert!(!req.is_empty());
        assert!(!req.per_type[ProcType::Cpu].is_empty());
        assert!(req.per_type[ProcType::NvidiaGpu].is_empty());
    }
}

//! Differential tests for the round-robin simulation fast path.
//!
//! `simulate` / `simulate_into` (grouped, allocation-free) must be
//! *bit-identical* to `simulate_reference`, the original per-call-allocating
//! implementation kept as the oracle. Three angles:
//!
//! 1. One-shot equivalence over randomized multi-project, multi-proc-type
//!    workloads (shares, on_frac, instance counts, fractional demands).
//! 2. Scratch-reuse equivalence: a single `RrScratch`/`RrOutcome` pair
//!    driven through a *sequence* of differently-shaped workloads must
//!    produce the same results as fresh per-call state.
//! 3. Client-level cache coherence: `rr_refresh`/`rr_snapshot` through
//!    repeated hit/miss sequences must always agree with an uncached
//!    `rr_simulate` of the same state.

use bce_avail::HostRunState;
use bce_client::{
    rr_simulate, rr_simulate_into, rr_simulate_reference, Client, ClientConfig, RrJob, RrOutcome,
    RrPlatform, RrScratch,
};
use bce_types::{
    AppId, Hardware, JobId, JobSpec, Preferences, ProcMap, ProcType, ProjectId, ResourceUsage,
    SimDuration, SimTime,
};
use proptest::prelude::*;

/// Randomized workload description: host shape plus a job list spanning
/// several projects and processor types.
#[derive(Debug, Clone)]
struct Workload {
    ncpus: f64,
    ngpus: f64,
    on_frac: f64,
    window: f64,
    /// `(project, gpu?, remaining, deadline, instances)` per job.
    jobs: Vec<(u32, bool, f64, f64, f64)>,
    /// Per-project resource shares (projects 0..6).
    shares: Vec<f64>,
}

fn workload() -> impl Strategy<Value = Workload> {
    (
        1.0f64..16.0,
        prop_oneof![Just(0.0f64), 1.0f64..4.0],
        0.1f64..1.0,
        0.0f64..200_000.0,
        proptest::collection::vec(
            (
                0u32..6,            // project
                any::<bool>(),      // gpu job?
                1.0f64..50_000.0,   // remaining secs
                50.0f64..500_000.0, // deadline secs
                0.25f64..3.0,       // fractional instance demand
            ),
            0..32,
        ),
        proptest::collection::vec(0.0f64..10.0, 6),
    )
        .prop_map(|(ncpus, ngpus, on_frac, window, jobs, shares)| Workload {
            ncpus,
            ngpus,
            on_frac,
            window,
            jobs,
            shares,
        })
}

fn build(w: &Workload) -> (RrPlatform, Vec<RrJob>) {
    let mut ninstances = ProcMap::zero();
    ninstances[ProcType::Cpu] = w.ncpus;
    ninstances[ProcType::NvidiaGpu] = w.ngpus;
    let platform = RrPlatform {
        now: SimTime::from_secs(1234.5),
        ninstances,
        on_frac: w.on_frac,
        shares: w.shares.iter().enumerate().map(|(p, &s)| (ProjectId(p as u32), s)).collect(),
    };
    let jobs: Vec<RrJob> = w
        .jobs
        .iter()
        .enumerate()
        .map(|(i, &(project, gpu, remaining, deadline, instances))| RrJob {
            id: JobId(i as u64),
            project: ProjectId(project),
            proc_type: if gpu { ProcType::NvidiaGpu } else { ProcType::Cpu },
            instances,
            remaining: SimDuration::from_secs(remaining),
            deadline: SimTime::from_secs(deadline),
        })
        .collect();
    (platform, jobs)
}

/// Bit-exact comparison: `PartialEq` on f64 is exactly what we want here —
/// the fast path must not change results even in the last ulp.
fn assert_identical(fast: &RrOutcome, oracle: &RrOutcome) {
    assert_eq!(fast.missed, oracle.missed, "missed sets differ");
    assert_eq!(fast.finish, oracle.finish, "finish times differ");
    for t in ProcType::ALL {
        assert_eq!(fast.sat[t], oracle.sat[t], "sat[{t:?}] differs");
        assert_eq!(
            fast.shortfall[t].to_bits(),
            oracle.shortfall[t].to_bits(),
            "shortfall[{t:?}] differs: {} vs {}",
            fast.shortfall[t],
            oracle.shortfall[t]
        );
        assert_eq!(
            fast.busy_now[t].to_bits(),
            oracle.busy_now[t].to_bits(),
            "busy_now[{t:?}] differs"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 192 })]

    /// One-shot: `simulate` over a random workload is bit-identical to the
    /// reference implementation.
    #[test]
    fn simulate_matches_reference(w in workload()) {
        let (platform, jobs) = build(&w);
        let window = SimDuration::from_secs(w.window);
        let fast = rr_simulate(&platform, &jobs, window);
        let oracle = rr_simulate_reference(&platform, &jobs, window);
        assert_identical(&fast, &oracle);
    }

    /// Scratch reuse: one `RrScratch`/`RrOutcome` pair fed a sequence of
    /// differently-shaped workloads (stale capacities, stale group tables)
    /// must match fresh reference runs at every step.
    #[test]
    fn scratch_reuse_matches_reference(ws in proptest::collection::vec(workload(), 1..6)) {
        let mut scratch = RrScratch::new();
        let mut out = RrOutcome::default();
        for w in &ws {
            let (platform, jobs) = build(w);
            let window = SimDuration::from_secs(w.window);
            rr_simulate_into(&platform, &jobs, window, &mut scratch, &mut out);
            let oracle = rr_simulate_reference(&platform, &jobs, window);
            assert_identical(&out, &oracle);
        }
    }
}

// ---------------------------------------------------------------------------
// Client-level cache coherence.
// ---------------------------------------------------------------------------

fn run_state() -> HostRunState {
    HostRunState { can_compute: true, can_gpu: true, net_up: true, user_active: false }
}

fn spec(id: u64, project: u32, dur: f64, latency: f64, gpu: bool) -> JobSpec {
    JobSpec {
        id: JobId(id),
        project: ProjectId(project),
        app: AppId(0),
        usage: if gpu {
            ResourceUsage::gpu(ProcType::NvidiaGpu, 1.0, 0.1)
        } else {
            ResourceUsage::one_cpu()
        },
        duration: SimDuration::from_secs(dur),
        duration_est: SimDuration::from_secs(dur),
        latency_bound: SimDuration::from_secs(latency),
        checkpoint_period: Some(SimDuration::from_secs(60.0)),
        working_set_bytes: 1e8,
        input_bytes: 0.0,
        output_bytes: 0.0,
        received: SimTime::ZERO,
    }
}

fn cache_client() -> Client {
    Client::new(
        Hardware::cpu_only(4, 1e9).with_group(ProcType::NvidiaGpu, 1, 1e10).with_vram(2e9),
        Preferences::default(),
        vec![
            Client::project(0, "alpha", 2.0, &[ProcType::Cpu, ProcType::NvidiaGpu]),
            Client::project(1, "beta", 1.0, &[ProcType::Cpu]),
            Client::project(2, "gamma", 0.5, &[ProcType::Cpu]),
        ],
        ClientConfig::default(),
    )
}

/// The cached snapshot always agrees with an uncached simulation of the
/// same `(now, run_state, on_frac)` — across job arrivals, time advances,
/// run-state flips, and repeated same-key queries.
#[test]
fn cached_snapshot_matches_uncached_through_mutations() {
    let mut c = cache_client();
    let rs = run_state();
    let check = |c: &mut Client, now: SimTime, rs: HostRunState, on_frac: f64| {
        c.rr_refresh(now, rs, on_frac);
        let fresh = c.rr_simulate(now, rs, on_frac);
        assert_identical(c.rr_snapshot(), &fresh);
    };

    check(&mut c, SimTime::ZERO, rs, 1.0);
    // Job arrivals invalidate.
    c.add_jobs(vec![
        spec(1, 0, 4000.0, 20_000.0, false),
        spec(2, 1, 2000.0, 8_000.0, false),
        spec(3, 0, 9000.0, 90_000.0, true),
    ]);
    check(&mut c, SimTime::ZERO, rs, 1.0);
    // Same key again: pure hit, still identical.
    check(&mut c, SimTime::ZERO, rs, 1.0);
    // A different on_frac at the same instant is a distinct key.
    check(&mut c, SimTime::ZERO, rs, 0.6);
    // Scheduling + advancing changes task state.
    c.reschedule(SimTime::ZERO, rs, 1.0);
    c.advance(SimTime::from_secs(500.0), rs);
    check(&mut c, SimTime::from_secs(500.0), rs, 1.0);
    // Run-state flip (GPU unusable) changes the platform, not the queue.
    let mut no_gpu = rs;
    no_gpu.can_gpu = false;
    check(&mut c, SimTime::from_secs(500.0), no_gpu, 1.0);
    // More arrivals mid-run, then another advance.
    c.add_jobs(vec![spec(4, 2, 600.0, 3_000.0, false), spec(5, 1, 1200.0, 5_000.0, false)]);
    check(&mut c, SimTime::from_secs(500.0), rs, 1.0);
    c.reschedule(SimTime::from_secs(500.0), rs, 1.0);
    c.advance(SimTime::from_secs(2500.0), rs);
    check(&mut c, SimTime::from_secs(2500.0), rs, 1.0);
}

/// Hit/miss accounting: repeated same-key refreshes are hits (no rerun);
/// any relevant mutation or key change forces exactly one rerun.
#[test]
fn refresh_hit_miss_accounting() {
    let mut c = cache_client();
    let rs = run_state();
    c.add_jobs(vec![spec(1, 0, 4000.0, 20_000.0, false)]);

    c.rr_refresh(SimTime::ZERO, rs, 1.0);
    let after_first = c.rr_stats();
    assert_eq!(after_first.runs, 1);

    // Ten same-key queries: all hits.
    for _ in 0..10 {
        c.rr_refresh(SimTime::ZERO, rs, 1.0);
    }
    let s = c.rr_stats();
    assert_eq!(s.runs, 1, "same-key refreshes must not rerun");
    assert_eq!(s.queries, after_first.queries + 10);

    // Time moves: miss.
    c.rr_refresh(SimTime::from_secs(10.0), rs, 1.0);
    assert_eq!(c.rr_stats().runs, 2);
    // Same new key: hit.
    c.rr_refresh(SimTime::from_secs(10.0), rs, 1.0);
    assert_eq!(c.rr_stats().runs, 2);

    // Queue mutation bumps the generation: miss even at the same instant.
    c.add_jobs(vec![spec(2, 1, 100.0, 1_000.0, false)]);
    c.rr_refresh(SimTime::from_secs(10.0), rs, 1.0);
    assert_eq!(c.rr_stats().runs, 3);

    // Manual invalidation behaves like any other mutation.
    c.invalidate_rr();
    c.rr_refresh(SimTime::from_secs(10.0), rs, 1.0);
    assert_eq!(c.rr_stats().runs, 4);

    // And the snapshot still matches an uncached run.
    let fresh = c.rr_simulate(SimTime::from_secs(10.0), rs, 1.0);
    assert_identical(c.rr_snapshot(), &fresh);
}

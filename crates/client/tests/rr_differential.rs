//! Differential tests for the round-robin simulation fast path.
//!
//! `simulate` / `simulate_into` (grouped, allocation-free) must be
//! *bit-identical* to `simulate_reference`, the original per-call-allocating
//! implementation kept as the oracle. Three angles:
//!
//! 1. One-shot equivalence over randomized multi-project, multi-proc-type
//!    workloads (shares, on_frac, instance counts, fractional demands).
//! 2. Scratch-reuse equivalence: a single `RrScratch`/`RrOutcome` pair
//!    driven through a *sequence* of differently-shaped workloads must
//!    produce the same results as fresh per-call state.
//! 3. Client-level cache coherence: `rr_refresh`/`rr_snapshot` through
//!    repeated hit/miss sequences must always agree with an uncached
//!    `rr_simulate` of the same state.

use bce_avail::HostRunState;
use bce_client::{
    rr_simulate, rr_simulate_into, rr_simulate_reference, Client, ClientConfig, RrJob, RrOutcome,
    RrPlatform, RrScratch,
};
use bce_types::{
    AppId, Hardware, JobId, JobSpec, Preferences, ProcMap, ProcType, ProjectId, ResourceUsage,
    SimDuration, SimTime,
};
use proptest::prelude::*;

/// Randomized workload description: host shape plus a job list spanning
/// several projects and processor types.
#[derive(Debug, Clone)]
struct Workload {
    ncpus: f64,
    ngpus: f64,
    on_frac: f64,
    window: f64,
    /// `(project, gpu?, remaining, deadline, instances)` per job.
    jobs: Vec<(u32, bool, f64, f64, f64)>,
    /// Per-project resource shares (projects 0..6).
    shares: Vec<f64>,
}

fn workload() -> impl Strategy<Value = Workload> {
    (
        1.0f64..16.0,
        prop_oneof![Just(0.0f64), 1.0f64..4.0],
        0.1f64..1.0,
        0.0f64..200_000.0,
        proptest::collection::vec(
            (
                0u32..6,            // project
                any::<bool>(),      // gpu job?
                1.0f64..50_000.0,   // remaining secs
                50.0f64..500_000.0, // deadline secs
                0.25f64..3.0,       // fractional instance demand
            ),
            0..32,
        ),
        proptest::collection::vec(0.0f64..10.0, 6),
    )
        .prop_map(|(ncpus, ngpus, on_frac, window, jobs, shares)| Workload {
            ncpus,
            ngpus,
            on_frac,
            window,
            jobs,
            shares,
        })
}

fn build(w: &Workload) -> (RrPlatform, Vec<RrJob>) {
    let mut ninstances = ProcMap::zero();
    ninstances[ProcType::Cpu] = w.ncpus;
    ninstances[ProcType::NvidiaGpu] = w.ngpus;
    let platform = RrPlatform {
        now: SimTime::from_secs(1234.5),
        ninstances,
        on_frac: w.on_frac,
        shares: w.shares.iter().enumerate().map(|(p, &s)| (ProjectId(p as u32), s)).collect(),
    };
    let jobs: Vec<RrJob> = w
        .jobs
        .iter()
        .enumerate()
        .map(|(i, &(project, gpu, remaining, deadline, instances))| RrJob {
            id: JobId(i as u64),
            project: ProjectId(project),
            proc_type: if gpu { ProcType::NvidiaGpu } else { ProcType::Cpu },
            instances,
            remaining: SimDuration::from_secs(remaining),
            deadline: SimTime::from_secs(deadline),
        })
        .collect();
    (platform, jobs)
}

/// Bit-exact comparison: `PartialEq` on f64 is exactly what we want here —
/// the fast path must not change results even in the last ulp.
fn assert_identical(fast: &RrOutcome, oracle: &RrOutcome) {
    assert_eq!(fast.missed, oracle.missed, "missed sets differ");
    assert_eq!(fast.finish, oracle.finish, "finish times differ");
    for t in ProcType::ALL {
        assert_eq!(fast.sat[t], oracle.sat[t], "sat[{t:?}] differs");
        assert_eq!(
            fast.shortfall[t].to_bits(),
            oracle.shortfall[t].to_bits(),
            "shortfall[{t:?}] differs: {} vs {}",
            fast.shortfall[t],
            oracle.shortfall[t]
        );
        assert_eq!(
            fast.busy_now[t].to_bits(),
            oracle.busy_now[t].to_bits(),
            "busy_now[{t:?}] differs"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 192 })]

    /// One-shot: `simulate` over a random workload is bit-identical to the
    /// reference implementation.
    #[test]
    fn simulate_matches_reference(w in workload()) {
        let (platform, jobs) = build(&w);
        let window = SimDuration::from_secs(w.window);
        let fast = rr_simulate(&platform, &jobs, window);
        let oracle = rr_simulate_reference(&platform, &jobs, window);
        assert_identical(&fast, &oracle);
    }

    /// Scratch reuse: one `RrScratch`/`RrOutcome` pair fed a sequence of
    /// differently-shaped workloads (stale capacities, stale group tables)
    /// must match fresh reference runs at every step.
    #[test]
    fn scratch_reuse_matches_reference(ws in proptest::collection::vec(workload(), 1..6)) {
        let mut scratch = RrScratch::new();
        let mut out = RrOutcome::default();
        for w in &ws {
            let (platform, jobs) = build(w);
            let window = SimDuration::from_secs(w.window);
            rr_simulate_into(&platform, &jobs, window, &mut scratch, &mut out);
            let oracle = rr_simulate_reference(&platform, &jobs, window);
            assert_identical(&out, &oracle);
        }
    }

    /// Adversarial dirty sequences: one workload *evolved in place* by
    /// small deltas — progress decay, single-job removal and arrival,
    /// platform flips — with the scratch (and its per-type step cache,
    /// persistent busy table and alive-index list) carried across every
    /// step. Small deltas are the dangerous case for incremental caches:
    /// most of the scratch's previous contents stay plausible, so stale
    /// entries are reachable in a way that fresh random workloads never
    /// exercise.
    #[test]
    fn evolving_workload_matches_reference(
        w0 in workload(),
        ops in proptest::collection::vec(
            prop_oneof![
                // Decay one job's remaining time (running-task progress).
                (0usize..64, 0.01f64..0.99).prop_map(|(i, f)| Mutation::Decay(i, f)),
                // Remove one job (completion).
                (0usize..64).prop_map(Mutation::Remove),
                // A new arrival.
                (0u32..6, any::<bool>(), 1.0f64..50_000.0, 50.0f64..500_000.0, 0.25f64..3.0)
                    .prop_map(|(p, g, r, d, i)| Mutation::Add(p, g, r, d, i)),
                // Host availability / duty-cycle drift.
                (0.1f64..1.0).prop_map(Mutation::OnFrac),
                // GPU appears or disappears (run-state flip).
                prop_oneof![Just(0.0f64), 1.0f64..4.0].prop_map(Mutation::Gpus),
                // A project's resource share changes.
                (0usize..6, 0.0f64..10.0).prop_map(|(p, s)| Mutation::Share(p, s)),
            ],
            1..24,
        ),
    ) {
        let mut w = w0;
        let mut scratch = RrScratch::new();
        let mut out = RrOutcome::default();
        for op in ops {
            match op {
                Mutation::Decay(i, frac) => {
                    if !w.jobs.is_empty() {
                        let i = i % w.jobs.len();
                        w.jobs[i].2 *= frac;
                    }
                }
                Mutation::Remove(i) => {
                    if !w.jobs.is_empty() {
                        let i = i % w.jobs.len();
                        w.jobs.remove(i);
                    }
                }
                Mutation::Add(p, gpu, rem, dl, inst) => w.jobs.push((p, gpu, rem, dl, inst)),
                Mutation::OnFrac(f) => w.on_frac = f,
                Mutation::Gpus(n) => w.ngpus = n,
                Mutation::Share(p, s) => w.shares[p] = s,
            }
            let (platform, jobs) = build(&w);
            let window = SimDuration::from_secs(w.window);
            rr_simulate_into(&platform, &jobs, window, &mut scratch, &mut out);
            let oracle = rr_simulate_reference(&platform, &jobs, window);
            assert_identical(&out, &oracle);
        }
    }
}

/// One evolution step of [`evolving_workload_matches_reference`].
#[derive(Debug, Clone)]
enum Mutation {
    Decay(usize, f64),
    Remove(usize),
    Add(u32, bool, f64, f64, f64),
    OnFrac(f64),
    Gpus(f64),
    Share(usize, f64),
}

// ---------------------------------------------------------------------------
// Client-level cache coherence.
// ---------------------------------------------------------------------------

fn run_state() -> HostRunState {
    HostRunState { can_compute: true, can_gpu: true, net_up: true, user_active: false }
}

fn spec(id: u64, project: u32, dur: f64, latency: f64, gpu: bool) -> JobSpec {
    JobSpec {
        id: JobId(id),
        project: ProjectId(project),
        app: AppId(0),
        usage: if gpu {
            ResourceUsage::gpu(ProcType::NvidiaGpu, 1.0, 0.1)
        } else {
            ResourceUsage::one_cpu()
        },
        duration: SimDuration::from_secs(dur),
        duration_est: SimDuration::from_secs(dur),
        latency_bound: SimDuration::from_secs(latency),
        checkpoint_period: Some(SimDuration::from_secs(60.0)),
        working_set_bytes: 1e8,
        input_bytes: 0.0,
        output_bytes: 0.0,
        received: SimTime::ZERO,
    }
}

fn cache_client() -> Client {
    Client::new(
        Hardware::cpu_only(4, 1e9).with_group(ProcType::NvidiaGpu, 1, 1e10).with_vram(2e9),
        Preferences::default(),
        vec![
            Client::project(0, "alpha", 2.0, &[ProcType::Cpu, ProcType::NvidiaGpu]),
            Client::project(1, "beta", 1.0, &[ProcType::Cpu]),
            Client::project(2, "gamma", 0.5, &[ProcType::Cpu]),
        ],
        ClientConfig::default(),
    )
}

/// The cached snapshot always agrees with an uncached simulation of the
/// same `(now, run_state, on_frac)` — across job arrivals, time advances,
/// run-state flips, and repeated same-key queries.
#[test]
fn cached_snapshot_matches_uncached_through_mutations() {
    let mut c = cache_client();
    let rs = run_state();
    let check = |c: &mut Client, now: SimTime, rs: HostRunState, on_frac: f64| {
        c.rr_refresh(now, rs, on_frac);
        let fresh = c.rr_simulate(now, rs, on_frac);
        assert_identical(c.rr_snapshot(), &fresh);
    };

    check(&mut c, SimTime::ZERO, rs, 1.0);
    // Job arrivals invalidate.
    c.add_jobs(vec![
        spec(1, 0, 4000.0, 20_000.0, false),
        spec(2, 1, 2000.0, 8_000.0, false),
        spec(3, 0, 9000.0, 90_000.0, true),
    ]);
    check(&mut c, SimTime::ZERO, rs, 1.0);
    // Same key again: pure hit, still identical.
    check(&mut c, SimTime::ZERO, rs, 1.0);
    // A different on_frac at the same instant is a distinct key.
    check(&mut c, SimTime::ZERO, rs, 0.6);
    // Scheduling + advancing changes task state.
    c.reschedule(SimTime::ZERO, rs, 1.0);
    c.advance(SimTime::from_secs(500.0), rs);
    check(&mut c, SimTime::from_secs(500.0), rs, 1.0);
    // Run-state flip (GPU unusable) changes the platform, not the queue.
    let mut no_gpu = rs;
    no_gpu.can_gpu = false;
    check(&mut c, SimTime::from_secs(500.0), no_gpu, 1.0);
    // More arrivals mid-run, then another advance.
    c.add_jobs(vec![spec(4, 2, 600.0, 3_000.0, false), spec(5, 1, 1200.0, 5_000.0, false)]);
    check(&mut c, SimTime::from_secs(500.0), rs, 1.0);
    c.reschedule(SimTime::from_secs(500.0), rs, 1.0);
    c.advance(SimTime::from_secs(2500.0), rs);
    check(&mut c, SimTime::from_secs(2500.0), rs, 1.0);
}

/// One step of [`client_ladder_serves_exact_or_retained_snapshots`].
#[derive(Debug, Clone)]
enum ClientOp {
    /// New arrivals: global dirt, must force a full rerun.
    Add(u8),
    /// Advance time (progress dirt if anything is running).
    Advance(f64),
    /// Apply the scheduling policy (starts/preempts tasks).
    Reschedule,
    /// GPU availability flips (platform change).
    Gpu(bool),
    /// Duty-cycle estimate drifts (platform change).
    OnFrac(f64),
    /// Explicit invalidation.
    Invalidate,
}

fn client_op() -> impl Strategy<Value = ClientOp> {
    prop_oneof![
        (1u8..4).prop_map(ClientOp::Add),
        (1.0f64..2_000.0).prop_map(ClientOp::Advance),
        Just(ClientOp::Reschedule),
        any::<bool>().prop_map(ClientOp::Gpu),
        (0.3f64..1.0).prop_map(ClientOp::OnFrac),
        Just(ClientOp::Invalidate),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64 })]

    /// The refresh ladder's exactness contract under adversarial mutation
    /// sequences: every query is served either by a *fresh* simulation of
    /// the live state (bit-identical to an uncached run) or by the
    /// *unmodified* retained outcome of the last full simulation — never
    /// by anything in between. Mutations must not leak into a retained
    /// snapshot, and a fresh run must never start from a corrupted
    /// scratch.
    #[test]
    fn client_ladder_serves_exact_or_retained_snapshots(
        ops in proptest::collection::vec(client_op(), 1..40),
    ) {
        let mut c = cache_client();
        let mut rs = run_state();
        let mut on_frac = 1.0f64;
        let mut now = SimTime::ZERO;
        let mut next_id = 1_000u64;
        c.rr_refresh(now, rs, on_frac);
        let mut last_full = c.rr_snapshot().clone();
        let mut last_runs = c.rr_stats().runs;
        for op in ops {
            match op {
                ClientOp::Add(n) => {
                    let base = now.secs();
                    c.add_jobs(
                        (0..n as u64)
                            .map(|i| {
                                next_id += 1;
                                spec(
                                    next_id,
                                    (next_id % 3) as u32,
                                    500.0 + 700.0 * i as f64,
                                    20_000.0 + base,
                                    next_id.is_multiple_of(4),
                                )
                            })
                            .collect(),
                    );
                }
                ClientOp::Advance(dt) => {
                    now += SimDuration::from_secs(dt);
                    c.advance(now, rs);
                }
                ClientOp::Reschedule => {
                    c.reschedule(now, rs, on_frac);
                }
                ClientOp::Gpu(g) => rs.can_gpu = g,
                ClientOp::OnFrac(f) => on_frac = f,
                ClientOp::Invalidate => c.invalidate_rr(),
            }
            c.rr_refresh(now, rs, on_frac);
            if c.rr_stats().runs != last_runs {
                // A full run: must be bit-identical to an uncached
                // simulation of the same live state.
                last_runs = c.rr_stats().runs;
                let fresh = c.rr_simulate(now, rs, on_frac);
                assert_identical(c.rr_snapshot(), &fresh);
                last_full = c.rr_snapshot().clone();
            } else {
                // A pure or frozen hit: must be the retained outcome,
                // untouched by any mutation since.
                assert_identical(c.rr_snapshot(), &last_full);
            }
        }
    }
}

/// Hit/miss accounting under the refresh ladder: same-key refreshes are
/// pure hits; clean/progress drift inside the frozen window is a frozen
/// hit (no rerun); structural mutations, platform changes and window
/// expiry each force exactly one rerun.
#[test]
fn refresh_hit_miss_accounting() {
    let mut c = cache_client();
    let rs = run_state();
    c.add_jobs(vec![spec(1, 0, 4000.0, 20_000.0, false)]);

    c.rr_refresh(SimTime::ZERO, rs, 1.0);
    let after_first = c.rr_stats();
    assert_eq!(after_first.runs, 1);

    // Ten same-key queries: all pure hits.
    for _ in 0..10 {
        c.rr_refresh(SimTime::ZERO, rs, 1.0);
    }
    let s = c.rr_stats();
    assert_eq!(s.runs, 1, "same-key refreshes must not rerun");
    assert_eq!(s.frozen, 0, "same-key refreshes are pure, not frozen, hits");
    assert_eq!(s.queries, after_first.queries + 10);

    // Time moves inside the frozen window (slack 20 000 − 4 000 = 16 000 s
    // ⇒ 5% is 800 s, clamped to the 0.125·work_buf_min = 225 s cap):
    // frozen hit, no rerun.
    c.rr_refresh(SimTime::from_secs(10.0), rs, 1.0);
    assert_eq!(c.rr_stats().runs, 1);
    assert_eq!(c.rr_stats().frozen, 1);
    // Same new key again: pure hit (the frozen hit re-keyed the cache).
    c.rr_refresh(SimTime::from_secs(10.0), rs, 1.0);
    assert_eq!(c.rr_stats().runs, 1);
    assert_eq!(c.rr_stats().frozen, 1);

    // A platform change (different on_frac) cannot be served frozen.
    c.rr_refresh(SimTime::from_secs(10.0), rs, 0.5);
    assert_eq!(c.rr_stats().runs, 2);

    // Time beyond the window (10 + τ(225) < 1000): rerun.
    c.rr_refresh(SimTime::from_secs(1000.0), rs, 0.5);
    assert_eq!(c.rr_stats().runs, 3);

    // Queue mutation is global dirt: rerun even at the same instant.
    c.add_jobs(vec![spec(2, 1, 100.0, 2_500.0, false)]);
    c.rr_refresh(SimTime::from_secs(1000.0), rs, 0.5);
    assert_eq!(c.rr_stats().runs, 4);

    // Manual invalidation behaves like any other structural mutation.
    c.invalidate_rr();
    c.rr_refresh(SimTime::from_secs(1000.0), rs, 0.5);
    assert_eq!(c.rr_stats().runs, 5);

    // And the snapshot still matches an uncached run.
    let fresh = c.rr_simulate(SimTime::from_secs(1000.0), rs, 0.5);
    assert_identical(c.rr_snapshot(), &fresh);
}

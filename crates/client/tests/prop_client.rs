//! Property tests for the client's core machinery: the round-robin
//! simulation, the transfer queue, and the task state machine.

use bce_client::{rr_simulate, RrJob, RrPlatform, Task, TransferQueue};
use bce_types::{
    AppId, JobId, JobSpec, ProcMap, ProcType, ProjectId, ResourceUsage, SimDuration, SimTime,
};
use proptest::prelude::*;

fn rr_case() -> impl Strategy<Value = (f64, Vec<(u32, f64, f64, f64)>)> {
    (
        1.0f64..8.0, // ncpus
        proptest::collection::vec(
            (
                0u32..4,             // project
                10.0f64..10_000.0,   // remaining
                100.0f64..100_000.0, // deadline
                0.5f64..2.0,         // instances
            ),
            1..24,
        ),
    )
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 128 })]

    /// RR simulation invariants: all jobs eventually finish (positive
    /// rates), busy never exceeds instances, shortfall bounded by
    /// window x instances, saturation consistent with shortfall.
    #[test]
    fn rr_sim_invariants((ncpus, jobs_desc) in rr_case(), window in 0.0f64..50_000.0) {
        let mut ninstances = ProcMap::zero();
        ninstances[ProcType::Cpu] = ncpus;
        let platform = RrPlatform {
            now: SimTime::ZERO,
            ninstances,
            on_frac: 1.0,
            shares: (0..4).map(|p| (ProjectId(p), 1.0)).collect(),
        };
        let jobs: Vec<RrJob> = jobs_desc
            .iter()
            .enumerate()
            .map(|(i, &(project, remaining, deadline, instances))| RrJob {
                id: JobId(i as u64),
                project: ProjectId(project),
                proc_type: ProcType::Cpu,
                instances,
                remaining: SimDuration::from_secs(remaining),
                deadline: SimTime::from_secs(deadline),
            })
            .collect();
        let out = rr_simulate(&platform, &jobs, SimDuration::from_secs(window));

        // Every job finishes (all have positive rates on a CPU host).
        prop_assert_eq!(out.finish.len(), jobs.len());
        // Completion no earlier than dedicated execution would allow.
        for (id, fin) in &out.finish {
            let job = &jobs[id.0 as usize];
            prop_assert!(fin.secs() >= job.remaining.secs() - 1e-6,
                "{id} finished at {} < remaining {}", fin.secs(), job.remaining.secs());
            // Endangered flag consistent with projected finish.
            let projected_miss = job.deadline.secs() < fin.secs();
            prop_assert_eq!(out.is_endangered(*id), projected_miss);
        }
        // Busy-now bounded by instance count.
        prop_assert!(out.busy_now[ProcType::Cpu] <= ncpus + 1e-9);
        // Shortfall bounded by the whole window being idle.
        prop_assert!(out.shortfall[ProcType::Cpu] <= ncpus * window + 1e-6);
        prop_assert!(out.shortfall[ProcType::Cpu] >= -1e-9);
        // If the CPU is saturated through the whole window, shortfall ~ 0.
        if out.sat[ProcType::Cpu].secs() >= window {
            prop_assert!(out.shortfall[ProcType::Cpu] < 1e-6 * ncpus * window.max(1.0));
        }
    }

    /// Transfer queue conserves bytes: total time to drain n transfers at
    /// rate r equals total bytes / r regardless of interleaving.
    #[test]
    fn transfer_queue_conservation(
        rate in 1.0f64..1e6,
        sizes in proptest::collection::vec(1.0f64..1e6, 1..10),
        step in 0.5f64..100.0,
    ) {
        let mut q = TransferQueue::new(rate);
        for (i, &b) in sizes.iter().enumerate() {
            q.enqueue(JobId(i as u64), b);
        }
        let total_bytes: f64 = sizes.iter().sum();
        let expected_drain = total_bytes / rate;
        let mut t = 0.0;
        let mut done = 0;
        while !q.is_empty() {
            done += q.advance(SimDuration::from_secs(step), true).completed.len();
            t += step;
            prop_assert!(t < expected_drain + 2.0 * step + 1.0, "queue never drains");
        }
        prop_assert_eq!(done, sizes.len());
        // Drain time within one step of the analytic value.
        prop_assert!(t >= expected_drain - 1e-6);
        prop_assert!(t <= expected_drain + 2.0 * step);
    }

    /// Task execution: progress is conserved across preemption cycles and
    /// rollback waste accounts exactly for lost progress.
    #[test]
    fn task_progress_conservation(
        duration in 100.0f64..10_000.0,
        checkpoint in proptest::option::of(10.0f64..1000.0),
        slices in proptest::collection::vec((1.0f64..500.0, any::<bool>()), 1..20),
    ) {
        let spec = JobSpec {
            id: JobId(1),
            project: ProjectId(0),
            app: AppId(0),
            usage: ResourceUsage::one_cpu(),
            duration: SimDuration::from_secs(duration),
            duration_est: SimDuration::from_secs(duration),
            latency_bound: SimDuration::from_secs(duration * 10.0),
            checkpoint_period: checkpoint.map(SimDuration::from_secs),
            working_set_bytes: 1e8,
            input_bytes: 0.0,
            output_bytes: 0.0,
            received: SimTime::ZERO,
        };
        let mut task = Task::new(spec);
        let mut now = 0.0;
        let mut executed = 0.0; // seconds actually spent executing
        for (dt, keep_mem) in slices {
            if task.is_complete() {
                break;
            }
            task.start();
            let before = task.progress();
            now += dt;
            task.advance(SimDuration::from_secs(dt), SimTime::from_secs(now));
            executed += task.progress() - before;
            if !task.is_complete() {
                task.preempt(keep_mem);
            }
        }
        if !task.is_complete() {
            task.start(); // apply any pending rollback
        }
        // Conservation: execution time = surviving progress + rollbacks.
        let accounted = task.progress() + task.rollback_waste;
        prop_assert!((accounted - executed).abs() < 1e-6,
            "executed {executed} != progress {} + waste {}",
            task.progress(), task.rollback_waste);
        // Progress never exceeds the job length.
        prop_assert!(task.progress() <= duration + 1e-9);
        // Without checkpoints, progress after an out-of-memory preemption
        // resets entirely (verified by the conservation equation plus the
        // fact that checkpointed == 0 implies progress == executed only
        // when nothing was dropped — covered above).
    }
}

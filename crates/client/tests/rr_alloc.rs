//! Steady-state allocation check for the RR fast path.
//!
//! `simulate_into` promises zero heap allocations once the scratch
//! vectors have grown to the workload's size. This binary installs a
//! counting global allocator and asserts the promise holds — the whole
//! point of the scratch-based API is that the emulator's inner loop
//! stops exercising the allocator.
//!
//! Kept as its own integration-test binary (single `#[test]`) because a
//! `#[global_allocator]` is process-wide and concurrent tests would
//! pollute the counters.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use bce_avail::HostRunState;
use bce_client::{rr_simulate_into, Client, ClientConfig, RrJob, RrOutcome, RrPlatform, RrScratch};
use bce_types::{
    AppId, Hardware, JobId, JobSpec, Preferences, ProcMap, ProcType, ProjectId, ResourceUsage,
    SimDuration, SimTime,
};

struct Counting;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for Counting {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static A: Counting = Counting;

fn jobs(n: usize) -> Vec<RrJob> {
    (0..n)
        .map(|i| RrJob {
            id: JobId(i as u64),
            project: ProjectId((i % 7) as u32),
            proc_type: if i % 4 == 0 { ProcType::NvidiaGpu } else { ProcType::Cpu },
            instances: 1.0 + (i % 3) as f64 * 0.5,
            remaining: SimDuration::from_secs(100.0 + (i as f64) * 37.0),
            deadline: SimTime::from_secs(5_000.0 + (i as f64) * 91.0),
        })
        .collect()
}

#[test]
fn simulate_into_is_allocation_free_in_steady_state() {
    let mut ninstances = ProcMap::zero();
    ninstances[ProcType::Cpu] = 4.0;
    ninstances[ProcType::NvidiaGpu] = 1.0;
    let platform = RrPlatform {
        now: SimTime::ZERO,
        ninstances,
        on_frac: 1.0,
        shares: (0..7).map(|p| (ProjectId(p), 1.0 + p as f64)).collect(),
    };
    let js = jobs(200);
    let window = SimDuration::from_hours(8.0);

    let mut scratch = RrScratch::new();
    let mut out = RrOutcome::default();
    // Warm-up: lets every scratch vector (and the outcome's finish/missed
    // vectors) reach its steady-state capacity.
    rr_simulate_into(&platform, &js, window, &mut scratch, &mut out);
    rr_simulate_into(&platform, &js, window, &mut scratch, &mut out);

    let before = ALLOCS.load(Ordering::Relaxed);
    for _ in 0..50 {
        rr_simulate_into(&platform, &js, window, &mut scratch, &mut out);
    }
    let after = ALLOCS.load(Ordering::Relaxed);
    assert_eq!(
        after - before,
        0,
        "simulate_into allocated {} times over 50 warm calls",
        after - before
    );

    // Shrinking the workload must stay allocation-free too (capacity is
    // retained, never released).
    let small = jobs(10);
    rr_simulate_into(&platform, &small, window, &mut scratch, &mut out);
    let before = ALLOCS.load(Ordering::Relaxed);
    for _ in 0..50 {
        rr_simulate_into(&platform, &small, window, &mut scratch, &mut out);
    }
    assert_eq!(ALLOCS.load(Ordering::Relaxed) - before, 0, "shrunk workload allocated");

    // Partial refreshes through the client's frozen-progress ladder are
    // zero-alloc per query too: a frozen hit is a key compare and two
    // counter bumps, never a re-simulation. (Same test body as above —
    // the counting allocator is process-wide, so all sections share one
    // serial #[test].)
    let mut c = Client::new(
        Hardware::cpu_only(4, 1e9),
        Preferences::default(),
        vec![
            Client::project(0, "alpha", 2.0, &[ProcType::Cpu]),
            Client::project(1, "beta", 1.0, &[ProcType::Cpu]),
        ],
        ClientConfig::default(),
    );
    let rs = HostRunState { can_compute: true, can_gpu: true, net_up: true, user_active: false };
    c.add_jobs(
        (0..8)
            .map(|i| JobSpec {
                id: JobId(i),
                project: ProjectId((i % 2) as u32),
                app: AppId(0),
                usage: ResourceUsage::one_cpu(),
                duration: SimDuration::from_secs(4_000.0),
                duration_est: SimDuration::from_secs(4_000.0),
                latency_bound: SimDuration::from_secs(20_000.0),
                checkpoint_period: None,
                working_set_bytes: 1e8,
                input_bytes: 0.0,
                output_bytes: 0.0,
                received: SimTime::ZERO,
            })
            .collect(),
    );
    // Full run at t=0 anchors the frozen window (slack 16 000 s ⇒ τ is
    // capped at 0.125 · work_buf_min = 225 s for default preferences).
    c.rr_refresh(SimTime::ZERO, rs, 1.0);
    let runs_before = c.rr_stats().runs;
    let frozen_before = c.rr_stats().frozen;
    let before = ALLOCS.load(Ordering::Relaxed);
    for t in 1..=100 {
        c.rr_refresh(SimTime::from_secs(t as f64), rs, 1.0);
    }
    let after = ALLOCS.load(Ordering::Relaxed);
    assert_eq!(after - before, 0, "frozen refresh allocated {} times", after - before);
    assert_eq!(c.rr_stats().runs, runs_before, "sweep left the frozen window and re-simulated");
    assert_eq!(c.rr_stats().frozen, frozen_before + 100, "sweep was not served frozen");
}

//! Steady-state allocation check for the RR fast path.
//!
//! `simulate_into` promises zero heap allocations once the scratch
//! vectors have grown to the workload's size. This binary installs a
//! counting global allocator and asserts the promise holds — the whole
//! point of the scratch-based API is that the emulator's inner loop
//! stops exercising the allocator.
//!
//! Kept as its own integration-test binary (single `#[test]`) because a
//! `#[global_allocator]` is process-wide and concurrent tests would
//! pollute the counters.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use bce_client::{rr_simulate_into, RrJob, RrOutcome, RrPlatform, RrScratch};
use bce_types::{JobId, ProcMap, ProcType, ProjectId, SimDuration, SimTime};

struct Counting;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for Counting {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static A: Counting = Counting;

fn jobs(n: usize) -> Vec<RrJob> {
    (0..n)
        .map(|i| RrJob {
            id: JobId(i as u64),
            project: ProjectId((i % 7) as u32),
            proc_type: if i % 4 == 0 { ProcType::NvidiaGpu } else { ProcType::Cpu },
            instances: 1.0 + (i % 3) as f64 * 0.5,
            remaining: SimDuration::from_secs(100.0 + (i as f64) * 37.0),
            deadline: SimTime::from_secs(5_000.0 + (i as f64) * 91.0),
        })
        .collect()
}

#[test]
fn simulate_into_is_allocation_free_in_steady_state() {
    let mut ninstances = ProcMap::zero();
    ninstances[ProcType::Cpu] = 4.0;
    ninstances[ProcType::NvidiaGpu] = 1.0;
    let platform = RrPlatform {
        now: SimTime::ZERO,
        ninstances,
        on_frac: 1.0,
        shares: (0..7).map(|p| (ProjectId(p), 1.0 + p as f64)).collect(),
    };
    let js = jobs(200);
    let window = SimDuration::from_hours(8.0);

    let mut scratch = RrScratch::new();
    let mut out = RrOutcome::default();
    // Warm-up: lets every scratch vector (and the outcome's finish/missed
    // vectors) reach its steady-state capacity.
    rr_simulate_into(&platform, &js, window, &mut scratch, &mut out);
    rr_simulate_into(&platform, &js, window, &mut scratch, &mut out);

    let before = ALLOCS.load(Ordering::Relaxed);
    for _ in 0..50 {
        rr_simulate_into(&platform, &js, window, &mut scratch, &mut out);
    }
    let after = ALLOCS.load(Ordering::Relaxed);
    assert_eq!(
        after - before,
        0,
        "simulate_into allocated {} times over 50 warm calls",
        after - before
    );

    // Shrinking the workload must stay allocation-free too (capacity is
    // retained, never released).
    let small = jobs(10);
    rr_simulate_into(&platform, &small, window, &mut scratch, &mut out);
    let before = ALLOCS.load(Ordering::Relaxed);
    for _ in 0..50 {
        rr_simulate_into(&platform, &small, window, &mut scratch, &mut out);
    }
    assert_eq!(ALLOCS.load(Ordering::Relaxed) - before, 0, "shrunk workload allocated");
}

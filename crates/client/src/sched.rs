//! Client job scheduling (§3.3): given the runnable jobs, decide which to
//! run, which to preempt.
//!
//! The default policy: run round-robin simulation; build an ordered job
//! list in which running-but-uncheckpointed jobs come first, then
//! deadline-endangered jobs (earliest deadline first), then the rest in
//! order of `PRIO_sched(P,T)`; GPU jobs have precedence over CPU jobs.
//! Scan the list, allocating instances and memory; skip jobs that do not
//! fit; stop when the processors are fully utilized.
//!
//! Policy variants compared in the paper:
//! * `JS-WRR`    — local accounting, deadlines ignored (pure weighted RR),
//! * `JS-LOCAL`  — local accounting + EDF promotion,
//! * `JS-GLOBAL` — global (REC) accounting + EDF promotion.
//!
//! As §6.2 extensions, the deadline tier can also be ordered by least
//! laxity or deadline density instead of EDF.

use crate::accounting::{Accounting, AccountingKind};
use crate::rr_sim::RrOutcome;
use crate::task::Task;
use bce_avail::HostRunState;
use bce_types::{Hardware, Preferences, ProcMap, ProcType, ProjectId, SimTime};

/// How deadline-endangered jobs are ordered among themselves.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeadlineOrder {
    /// Earliest deadline first (BOINC's choice; optimal on uniprocessors).
    Edf,
    /// Least laxity first (deadline − now − remaining estimate).
    Llf,
    /// Highest deadline density (remaining / time-to-deadline) first.
    Density,
}

/// A job-scheduling policy configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JobSchedPolicy {
    pub accounting: AccountingKind,
    /// Promote deadline-endangered jobs? (false = pure WRR)
    pub use_deadlines: bool,
    pub deadline_order: DeadlineOrder,
}

impl JobSchedPolicy {
    /// The paper's JS-WRR variant.
    pub const WRR: JobSchedPolicy = JobSchedPolicy {
        accounting: AccountingKind::Local,
        use_deadlines: false,
        deadline_order: DeadlineOrder::Edf,
    };
    /// The paper's JS-LOCAL variant.
    pub const LOCAL: JobSchedPolicy = JobSchedPolicy {
        accounting: AccountingKind::Local,
        use_deadlines: true,
        deadline_order: DeadlineOrder::Edf,
    };
    /// The paper's JS-GLOBAL variant.
    pub const GLOBAL: JobSchedPolicy = JobSchedPolicy {
        accounting: AccountingKind::Global,
        use_deadlines: true,
        deadline_order: DeadlineOrder::Edf,
    };

    pub fn name(&self) -> String {
        if !self.use_deadlines {
            return "JS-WRR".into();
        }
        let base = match self.accounting {
            AccountingKind::Local => "JS-LOCAL",
            AccountingKind::Global => "JS-GLOBAL",
        };
        match self.deadline_order {
            DeadlineOrder::Edf => base.to_string(),
            DeadlineOrder::Llf => format!("{base}+LLF"),
            DeadlineOrder::Density => format!("{base}+DD"),
        }
    }
}

/// Everything the planner looks at.
pub struct PlanInput<'a> {
    pub now: SimTime,
    pub tasks: &'a [Task],
    pub rr: &'a RrOutcome,
    pub accounting: &'a Accounting,
    pub hw: &'a Hardware,
    pub prefs: &'a Preferences,
    pub run_state: HostRunState,
    /// RAM available to tasks right now (depends on user activity).
    pub mem_budget: f64,
}

/// The planner's decision: indices into `tasks` that should be running.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct RunPlan {
    pub run: Vec<usize>,
    /// Runnable jobs skipped because memory would be exceeded (§3.3).
    pub skipped_mem: usize,
}

impl RunPlan {
    pub fn contains(&self, idx: usize) -> bool {
        self.run.contains(&idx)
    }
}

/// One class-2 candidate, with every round-invariant part of its
/// selection key resolved up front.
#[derive(Debug, Clone, Copy)]
struct Cand {
    idx: usize,
    gpu: bool,
    base: f64,
    neg_recv: f64,
    /// Index into [`PlanScratch::adj`] for this candidate's
    /// (project, type) anticipated debt.
    slot: usize,
    /// Debt delta applied to `adj[slot]` when this candidate places.
    delta: f64,
}

/// One distinct (project, processor type) pair among the class-2
/// candidates, with its share-derived constants resolved once.
#[derive(Debug, Clone, Copy)]
struct Slot {
    project: ProjectId,
    pt: usize,
    /// `PRIO_sched(project, pt)` — frozen for the duration of a plan.
    base: f64,
    ninst: f64,
    share: f64,
}

/// Reusable workspace for [`plan_into`]. All vectors retain their
/// capacity across calls, so steady-state planning performs no heap
/// allocation. [`plan`] allocates one per call; the client owns one and
/// reuses it at every scheduling point.
#[derive(Debug, Default)]
pub struct PlanScratch {
    classes: [Vec<usize>; 3],
    slots: Vec<Slot>,
    remaining: Vec<Cand>,
    adj: Vec<f64>,
}

impl PlanScratch {
    pub fn new() -> Self {
        Self::default()
    }
}

/// Build the run plan. Deterministic: ties break on dispatch order.
/// Allocating convenience wrapper around [`plan_into`].
pub fn plan(policy: JobSchedPolicy, input: &PlanInput<'_>) -> RunPlan {
    plan_into(policy, input, &mut PlanScratch::new())
}

/// [`plan`] with a caller-owned workspace; bit-identical output.
pub fn plan_into(
    policy: JobSchedPolicy,
    input: &PlanInput<'_>,
    scratch: &mut PlanScratch,
) -> RunPlan {
    let hw = input.hw;
    let mut free = ProcMap::from_fn(|t| match t {
        ProcType::Cpu => {
            if input.run_state.can_compute {
                input.prefs.usable_cpus(hw.ninstances(ProcType::Cpu)) as f64
            } else {
                0.0
            }
        }
        _ => {
            if input.run_state.can_gpu {
                hw.ninstances(t) as f64
            } else {
                0.0
            }
        }
    });
    let mut mem_left = input.mem_budget;
    let mut plan = RunPlan::default();
    if !input.run_state.can_compute && !input.run_state.can_gpu {
        return plan;
    }

    // Candidate indices, classed. Class 0: running & uncheckpointed.
    // Class 1: deadline-endangered. Class 2: the rest.
    let classes = &mut scratch.classes;
    for c in classes.iter_mut() {
        c.clear();
    }
    for (i, task) in input.tasks.iter().enumerate() {
        if !task.is_runnable() {
            continue;
        }
        if task.is_running() && !task.checkpointed_since_start() {
            classes[0].push(i);
        } else if policy.use_deadlines && input.rr.is_endangered(task.spec.id) {
            classes[1].push(i);
        } else {
            classes[2].push(i);
        }
    }

    // Class-1 order: GPU before CPU, then the configured deadline order.
    let now = input.now;
    classes[1].sort_by(|&a, &b| {
        let (ta, tb) = (&input.tasks[a], &input.tasks[b]);
        let gpu_a = ta.spec.usage.is_gpu_job();
        let gpu_b = tb.spec.usage.is_gpu_job();
        gpu_b.cmp(&gpu_a).then_with(|| {
            let key = |t: &Task| -> f64 {
                match policy.deadline_order {
                    DeadlineOrder::Edf => t.spec.deadline().secs(),
                    DeadlineOrder::Llf => {
                        (t.spec.deadline() - now).secs() - t.remaining_est().secs()
                    }
                    DeadlineOrder::Density => {
                        let ttd = (t.spec.deadline() - now).secs().max(1.0);
                        -(t.remaining_est().secs() / ttd)
                    }
                }
            };
            key(ta).partial_cmp(&key(tb)).unwrap_or(std::cmp::Ordering::Equal)
        })
    });

    // Allocation helper: try to place task `i`.
    let try_place = |i: usize, free: &mut ProcMap<f64>, mem_left: &mut f64, plan: &mut RunPlan| {
        let task = &input.tasks[i];
        let usage = task.spec.usage;
        // Device feasibility.
        if let Some((gt, n)) = usage.coproc {
            if free[gt] + 1e-9 < n {
                return false;
            }
            // GPU jobs may overcommit the CPU by their (small) CPU
            // fraction, as the real client does.
        } else if free[ProcType::Cpu] + 1e-9 < usage.avg_cpus {
            return false;
        }
        if task.spec.working_set_bytes > *mem_left + 1e-6 {
            plan.skipped_mem += 1;
            return false;
        }
        if let Some((gt, n)) = usage.coproc {
            // The GPU job's small CPU feeder fraction overcommits the CPU
            // rather than displacing CPU jobs, as in the real client.
            free[gt] -= n;
        } else {
            free[ProcType::Cpu] -= usage.avg_cpus;
        }
        *mem_left -= task.spec.working_set_bytes;
        plan.run.push(i);
        true
    };

    // Class 0 and class 1 go in list order.
    for &i in classes[0].iter().chain(classes[1].iter()) {
        try_place(i, &mut free, &mut mem_left, &mut plan);
    }

    // Class 2: repeated argmax with anticipated-debt adjustment so a
    // single scan interleaves projects instead of letting whichever
    // project is microscopically ahead fill every instance.
    //
    // Everything but the debt adjustment is invariant across rounds —
    // the accounting state is frozen for the duration of a plan — so
    // each candidate's base priority, receive-order tiebreak, debt slot
    // and post-placement delta are computed once up front, and the
    // accounting lookups (`prio_sched` walks every project under global
    // accounting; `share_frac` is a map probe) happen once per distinct
    // (project, type) slot rather than once per candidate per round.
    // The selection key `base + adj[slot]` and the adjustment
    // arithmetic are exactly the expressions the per-round version
    // evaluated, on the same operands, so the plan is bit-identical.
    const ADJ_SLICE: f64 = 3600.0;
    let slots = &mut scratch.slots;
    let remaining = &mut scratch.remaining;
    slots.clear();
    remaining.clear();
    for &i in classes[2].iter() {
        if plan.contains(i) {
            continue;
        }
        let task = &input.tasks[i];
        let pt = task.spec.usage.main_proc_type();
        let slot =
            match slots.iter().position(|s| s.project == task.spec.project && s.pt == pt.index()) {
                Some(p) => p,
                None => {
                    slots.push(Slot {
                        project: task.spec.project,
                        pt: pt.index(),
                        base: input.accounting.prio_sched(task.spec.project, pt),
                        ninst: input.hw.ninstances(pt).max(1) as f64,
                        share: input.accounting.share_frac(task.spec.project).max(1e-6),
                    });
                    slots.len() - 1
                }
            };
        let s = &slots[slot];
        // Anticipated-debt delta: the project claims a slice of this
        // type, so its effective priority drops — scaled inversely by
        // its share so the single scan interleaves projects in share
        // proportion (a project with 3x the share gets 3x the slots
        // before parity).
        remaining.push(Cand {
            idx: i,
            gpu: task.spec.usage.is_gpu_job(),
            base: s.base,
            neg_recv: -task.spec.received.secs(),
            slot,
            delta: task.spec.usage.instances_of(pt) / s.ninst * ADJ_SLICE / s.share,
        });
    }
    let adj = &mut scratch.adj;
    adj.clear();
    adj.resize(slots.len(), 0.0);
    while !remaining.is_empty() {
        // Stop early if nothing can fit at all.
        let cpu_space = free[ProcType::Cpu] > 1e-9;
        let gpu_space = ProcType::ALL.iter().any(|&t| t.is_gpu() && free[t] > 1e-9);
        if !cpu_space && !gpu_space {
            break;
        }
        let mut best: Option<(usize, (bool, f64, f64))> = None; // (pos, (gpu, prio, -recv))
        for (pos, c) in remaining.iter().enumerate() {
            let key = (c.gpu, c.base + adj[c.slot], c.neg_recv);
            let better = match &best {
                None => true,
                Some((_, bk)) => {
                    key.0
                        .cmp(&bk.0)
                        .then(key.1.partial_cmp(&bk.1).unwrap_or(std::cmp::Ordering::Equal))
                        .then(key.2.partial_cmp(&bk.2).unwrap_or(std::cmp::Ordering::Equal))
                        == std::cmp::Ordering::Greater
                }
            };
            if better {
                best = Some((pos, key));
            }
        }
        let Some((pos, _)) = best else { break };
        let c = remaining.swap_remove(pos);
        if try_place(c.idx, &mut free, &mut mem_left, &mut plan) {
            adj[c.slot] -= c.delta;
        }
    }

    plan
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rr_sim::{simulate, RrJob, RrPlatform};
    use bce_types::{AppId, JobId, JobSpec, ResourceUsage, SimDuration};

    fn spec(
        id: u64,
        project: u32,
        usage: ResourceUsage,
        dur: f64,
        latency: f64,
        recv: f64,
    ) -> JobSpec {
        JobSpec {
            id: JobId(id),
            project: ProjectId(project),
            app: AppId(0),
            usage,
            duration: SimDuration::from_secs(dur),
            duration_est: SimDuration::from_secs(dur),
            latency_bound: SimDuration::from_secs(latency),
            checkpoint_period: Some(SimDuration::from_secs(60.0)),
            working_set_bytes: 1e8,
            input_bytes: 0.0,
            output_bytes: 0.0,
            received: SimTime::from_secs(recv),
        }
    }

    fn rr_for(tasks: &[Task], hw: &Hardware, shares: &[(u32, f64)]) -> RrOutcome {
        let platform = RrPlatform {
            now: SimTime::ZERO,
            ninstances: ProcMap::from_fn(|t| hw.ninstances(t) as f64),
            on_frac: 1.0,
            shares: shares.iter().map(|&(p, s)| (ProjectId(p), s)).collect(),
        };
        let jobs: Vec<RrJob> = tasks
            .iter()
            .map(|t| RrJob {
                id: t.spec.id,
                project: t.spec.project,
                proc_type: t.spec.usage.main_proc_type(),
                instances: t.spec.usage.instances_of(t.spec.usage.main_proc_type()),
                remaining: t.remaining_est(),
                deadline: t.spec.deadline(),
            })
            .collect();
        simulate(&platform, &jobs, SimDuration::from_secs(3600.0))
    }

    fn accounting(shares: &[(u32, f64)]) -> Accounting {
        Accounting::new(
            AccountingKind::Local,
            shares.iter().map(|&(p, s)| (ProjectId(p), s)),
            SimDuration::from_days(10.0),
        )
    }

    fn run_plan(
        policy: JobSchedPolicy,
        tasks: &[Task],
        hw: &Hardware,
        shares: &[(u32, f64)],
        acct: &Accounting,
    ) -> RunPlan {
        let rr = rr_for(tasks, hw, shares);
        let input = PlanInput {
            now: SimTime::ZERO,
            tasks,
            rr: &rr,
            accounting: acct,
            hw,
            prefs: &Preferences::default(),
            run_state: HostRunState {
                can_compute: true,
                can_gpu: true,
                net_up: true,
                user_active: false,
            },
            mem_budget: 4e9,
        };
        plan(policy, &input)
    }

    #[test]
    fn fills_all_cpus() {
        let hw = Hardware::cpu_only(2, 1e9);
        let shares = [(0, 1.0)];
        let tasks: Vec<Task> = (0..4)
            .map(|i| Task::new(spec(i, 0, ResourceUsage::one_cpu(), 1000.0, 1e6, i as f64)))
            .collect();
        let p = run_plan(JobSchedPolicy::LOCAL, &tasks, &hw, &shares, &accounting(&shares));
        assert_eq!(p.run.len(), 2);
        // FIFO among equal priorities.
        assert!(p.contains(0) && p.contains(1));
    }

    #[test]
    fn edf_promotes_endangered_job() {
        let hw = Hardware::cpu_only(1, 1e9);
        let shares = [(0, 1.0), (1, 1.0)];
        // Task 0: plenty of slack, received earlier. Task 1: tight deadline.
        let tasks = vec![
            Task::new(spec(0, 0, ResourceUsage::one_cpu(), 1000.0, 1e6, 0.0)),
            Task::new(spec(1, 1, ResourceUsage::one_cpu(), 1000.0, 1100.0, 1.0)),
        ];
        let p = run_plan(JobSchedPolicy::LOCAL, &tasks, &hw, &shares, &accounting(&shares));
        assert_eq!(p.run, vec![1], "endangered job must run first");
        // Same scenario under WRR ignores deadlines: FIFO/priority order.
        let p_wrr = run_plan(JobSchedPolicy::WRR, &tasks, &hw, &shares, &accounting(&shares));
        assert_eq!(p_wrr.run.len(), 1);
        assert_eq!(p_wrr.run, vec![0]);
    }

    #[test]
    fn gpu_jobs_precede_cpu_jobs() {
        let hw = Hardware::cpu_only(1, 1e9).with_group(ProcType::NvidiaGpu, 1, 1e10);
        let shares = [(0, 1.0)];
        let tasks = vec![
            Task::new(spec(0, 0, ResourceUsage::one_cpu(), 1000.0, 1e6, 0.0)),
            Task::new(spec(
                1,
                0,
                ResourceUsage::gpu(ProcType::NvidiaGpu, 1.0, 0.1),
                1000.0,
                1e6,
                5.0,
            )),
        ];
        let p = run_plan(JobSchedPolicy::LOCAL, &tasks, &hw, &shares, &accounting(&shares));
        // Both fit (GPU job overcommits CPU slightly); GPU selected first.
        assert_eq!(p.run[0], 1);
        assert!(p.contains(0));
    }

    #[test]
    fn scan_interleaves_projects() {
        // 4 CPUs, 2 projects with equal shares and 4 queued jobs each:
        // the anticipated-debt adjustment must pick 2 of each, not 4 of
        // whichever has epsilon-higher debt.
        let hw = Hardware::cpu_only(4, 1e9);
        let shares = [(0, 1.0), (1, 1.0)];
        let mut tasks = Vec::new();
        for i in 0..4 {
            tasks.push(Task::new(spec(i, 0, ResourceUsage::one_cpu(), 1000.0, 1e6, i as f64)));
        }
        for i in 4..8 {
            tasks.push(Task::new(spec(i, 1, ResourceUsage::one_cpu(), 1000.0, 1e6, i as f64)));
        }
        let p = run_plan(JobSchedPolicy::LOCAL, &tasks, &hw, &shares, &accounting(&shares));
        assert_eq!(p.run.len(), 4);
        let p0 = p.run.iter().filter(|&&i| tasks[i].spec.project == ProjectId(0)).count();
        assert_eq!(p0, 2, "expected 2 jobs from each project, run={:?}", p.run);
    }

    #[test]
    fn share_weighted_interleaving() {
        // 4 CPUs; shares 3:1 → 3 jobs from P0, 1 from P1.
        let hw = Hardware::cpu_only(4, 1e9);
        let shares = [(0, 3.0), (1, 1.0)];
        let mut tasks = Vec::new();
        for i in 0..4 {
            tasks.push(Task::new(spec(i, 0, ResourceUsage::one_cpu(), 1000.0, 1e6, i as f64)));
        }
        for i in 4..8 {
            tasks.push(Task::new(spec(i, 1, ResourceUsage::one_cpu(), 1000.0, 1e6, i as f64)));
        }
        let p = run_plan(JobSchedPolicy::LOCAL, &tasks, &hw, &shares, &accounting(&shares));
        let p0 = p.run.iter().filter(|&&i| tasks[i].spec.project == ProjectId(0)).count();
        assert_eq!(p0, 3, "run={:?}", p.run);
    }

    #[test]
    fn memory_limit_skips_jobs() {
        let hw = Hardware::cpu_only(4, 1e9);
        let shares = [(0, 1.0)];
        let mut tasks: Vec<Task> = (0..3)
            .map(|i| Task::new(spec(i, 0, ResourceUsage::one_cpu(), 1000.0, 1e6, i as f64)))
            .collect();
        // Make each working set 1 GB with a 2 GB budget: only 2 fit.
        for t in &mut tasks {
            // rebuild with bigger working set
            let mut s = t.spec.clone();
            s.working_set_bytes = 1e9;
            *t = Task::new(s);
        }
        let rr = rr_for(&tasks, &hw, &shares);
        let acct = accounting(&shares);
        let input = PlanInput {
            now: SimTime::ZERO,
            tasks: &tasks,
            rr: &rr,
            accounting: &acct,
            hw: &hw,
            prefs: &Preferences::default(),
            run_state: HostRunState {
                can_compute: true,
                can_gpu: true,
                net_up: true,
                user_active: false,
            },
            mem_budget: 2e9,
        };
        let p = plan(JobSchedPolicy::LOCAL, &input);
        assert_eq!(p.run.len(), 2);
        assert_eq!(p.skipped_mem, 1);
    }

    #[test]
    fn gpu_suspended_runs_cpu_only() {
        let hw = Hardware::cpu_only(1, 1e9).with_group(ProcType::NvidiaGpu, 1, 1e10);
        let shares = [(0, 1.0)];
        let tasks = vec![
            Task::new(spec(
                0,
                0,
                ResourceUsage::gpu(ProcType::NvidiaGpu, 1.0, 0.1),
                1000.0,
                1e6,
                0.0,
            )),
            Task::new(spec(1, 0, ResourceUsage::one_cpu(), 1000.0, 1e6, 1.0)),
        ];
        let rr = rr_for(&tasks, &hw, &shares);
        let acct = accounting(&shares);
        let input = PlanInput {
            now: SimTime::ZERO,
            tasks: &tasks,
            rr: &rr,
            accounting: &acct,
            hw: &hw,
            prefs: &Preferences::default(),
            run_state: HostRunState {
                can_compute: true,
                can_gpu: false,
                net_up: true,
                user_active: false,
            },
            mem_budget: 4e9,
        };
        let p = plan(JobSchedPolicy::LOCAL, &input);
        assert_eq!(p.run, vec![1]);
    }

    #[test]
    fn nothing_runs_when_suspended() {
        let hw = Hardware::cpu_only(4, 1e9);
        let shares = [(0, 1.0)];
        let tasks = vec![Task::new(spec(0, 0, ResourceUsage::one_cpu(), 1000.0, 1e6, 0.0))];
        let rr = rr_for(&tasks, &hw, &shares);
        let acct = accounting(&shares);
        let input = PlanInput {
            now: SimTime::ZERO,
            tasks: &tasks,
            rr: &rr,
            accounting: &acct,
            hw: &hw,
            prefs: &Preferences::default(),
            run_state: HostRunState::OFF,
            mem_budget: 4e9,
        };
        assert!(plan(JobSchedPolicy::LOCAL, &input).run.is_empty());
    }

    #[test]
    fn running_uncheckpointed_keeps_cpu() {
        let hw = Hardware::cpu_only(1, 1e9);
        let shares = [(0, 1.0), (1, 1.0)];
        let mut tasks = vec![
            Task::new(spec(0, 0, ResourceUsage::one_cpu(), 1000.0, 1e6, 0.0)),
            Task::new(spec(1, 1, ResourceUsage::one_cpu(), 1000.0, 2000.0, 1.0)),
        ];
        // Task 0 is running and has progressed past no checkpoint (30 s in,
        // checkpoints every 60 s).
        tasks[0].start();
        tasks[0].advance(SimDuration::from_secs(30.0), SimTime::from_secs(30.0));
        assert!(!tasks[0].checkpointed_since_start());
        let p = run_plan(JobSchedPolicy::LOCAL, &tasks, &hw, &shares, &accounting(&shares));
        // Even though task 1 is deadline-endangered, task 0 keeps the CPU.
        assert_eq!(p.run, vec![0]);
    }

    #[test]
    fn policy_names() {
        assert_eq!(JobSchedPolicy::WRR.name(), "JS-WRR");
        assert_eq!(JobSchedPolicy::LOCAL.name(), "JS-LOCAL");
        assert_eq!(JobSchedPolicy::GLOBAL.name(), "JS-GLOBAL");
        let llf = JobSchedPolicy { deadline_order: DeadlineOrder::Llf, ..JobSchedPolicy::LOCAL };
        assert_eq!(llf.name(), "JS-LOCAL+LLF");
        let dd =
            JobSchedPolicy { deadline_order: DeadlineOrder::Density, ..JobSchedPolicy::GLOBAL };
        assert_eq!(dd.name(), "JS-GLOBAL+DD");
    }
}

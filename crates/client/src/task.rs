//! Client-side job state.
//!
//! A [`Task`] is a queued or running job. Work is measured in
//! *dedicated-execution seconds*: a task running with its full resource
//! allocation gains one second of progress per second of wall time.
//! Checkpointing (§2.3: "almost all BOINC-based applications do regular
//! checkpointing") happens every `checkpoint_period` execution seconds;
//! preempting a task that is not kept in memory rolls it back to its last
//! checkpoint, and the lost progress is counted as wasted processing.

use bce_types::{JobSpec, SimDuration, SimTime};

/// Why a task is not currently running (for the message log).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TaskState {
    /// Waiting for input files.
    Downloading,
    /// Ready to run.
    Queued,
    Running,
    /// Preempted, possibly still in memory.
    Preempted,
    /// Computation finished; output upload may still be pending.
    Completed,
    /// Permanently failed (e.g. transfer retries exhausted); never
    /// runnable again, retired as an errored job.
    Error,
}

impl TaskState {
    /// Stable textual name, for checkpoint serialization.
    pub fn name(self) -> &'static str {
        match self {
            TaskState::Downloading => "downloading",
            TaskState::Queued => "queued",
            TaskState::Running => "running",
            TaskState::Preempted => "preempted",
            TaskState::Completed => "completed",
            TaskState::Error => "error",
        }
    }

    /// Inverse of [`TaskState::name`].
    pub fn from_name(name: &str) -> Option<Self> {
        Some(match name {
            "downloading" => TaskState::Downloading,
            "queued" => TaskState::Queued,
            "running" => TaskState::Running,
            "preempted" => TaskState::Preempted,
            "completed" => TaskState::Completed,
            "error" => TaskState::Error,
            _ => return None,
        })
    }
}

/// Complete raw state of one [`Task`], for checkpointing. Every field is
/// public so the checkpoint codec can serialize it without `Task` exposing
/// mutable access in normal operation.
#[derive(Debug, Clone)]
pub struct TaskSnapshot {
    pub spec: JobSpec,
    pub state: TaskState,
    pub progress: f64,
    pub checkpointed: f64,
    pub run_start_progress: f64,
    pub in_memory: bool,
    pub rollback_waste: f64,
    pub completed_at: Option<SimTime>,
}

/// A job on the client, with its execution progress.
#[derive(Debug, Clone)]
pub struct Task {
    pub spec: JobSpec,
    state: TaskState,
    /// Dedicated-execution seconds completed.
    progress: f64,
    /// Progress as of the last checkpoint.
    checkpointed: f64,
    /// Progress when the task last (re)started running; used for the
    /// "running jobs that have not checkpointed yet" precedence rule.
    run_start_progress: f64,
    /// Still resident in memory while preempted (resumes without rollback).
    in_memory: bool,
    /// Total execution seconds lost to checkpoint rollbacks.
    pub rollback_waste: f64,
    pub completed_at: Option<SimTime>,
}

impl Task {
    pub fn new(spec: JobSpec) -> Self {
        let needs_download = spec.input_bytes > 0.0;
        Task {
            spec,
            state: if needs_download { TaskState::Downloading } else { TaskState::Queued },
            progress: 0.0,
            checkpointed: 0.0,
            run_start_progress: 0.0,
            in_memory: false,
            rollback_waste: 0.0,
            completed_at: None,
        }
    }

    /// Restore a task that already has execution progress (e.g. from an
    /// imported state file). Progress is clamped to the job length and
    /// treated as checkpointed (the real client checkpoints before
    /// writing its state file).
    pub fn with_progress(spec: JobSpec, progress: SimDuration) -> Self {
        let mut task = Task::new(spec);
        let p = progress.secs().clamp(0.0, task.spec.duration.secs());
        task.progress = p;
        task.checkpointed = p;
        task.run_start_progress = p;
        task
    }

    /// Full raw state, for checkpointing.
    pub fn snapshot(&self) -> TaskSnapshot {
        TaskSnapshot {
            spec: self.spec.clone(),
            state: self.state,
            progress: self.progress,
            checkpointed: self.checkpointed,
            run_start_progress: self.run_start_progress,
            in_memory: self.in_memory,
            rollback_waste: self.rollback_waste,
            completed_at: self.completed_at,
        }
    }

    /// Rebuild a task from captured raw state (checkpoint restore).
    pub fn from_snapshot(snap: TaskSnapshot) -> Self {
        Task {
            spec: snap.spec,
            state: snap.state,
            progress: snap.progress,
            checkpointed: snap.checkpointed,
            run_start_progress: snap.run_start_progress,
            in_memory: snap.in_memory,
            rollback_waste: snap.rollback_waste,
            completed_at: snap.completed_at,
        }
    }

    pub fn state(&self) -> TaskState {
        self.state
    }

    pub fn is_running(&self) -> bool {
        self.state == TaskState::Running
    }

    pub fn is_runnable(&self) -> bool {
        matches!(self.state, TaskState::Queued | TaskState::Running | TaskState::Preempted)
    }

    pub fn is_complete(&self) -> bool {
        self.state == TaskState::Completed
    }

    pub fn progress(&self) -> f64 {
        self.progress
    }

    pub fn fraction_done(&self) -> f64 {
        (self.progress / self.spec.duration.secs()).min(1.0)
    }

    /// Remaining dedicated-execution time (true value).
    pub fn remaining(&self) -> SimDuration {
        (self.spec.duration - SimDuration::from_secs(self.progress)).clamp_non_negative()
    }

    /// Remaining time as the client estimates it (it only knows
    /// `duration_est`). Never less than zero; an over-run task is assumed
    /// nearly done.
    pub fn remaining_est(&self) -> SimDuration {
        let est = self.spec.duration_est.secs() - self.progress;
        SimDuration::from_secs(est.max(1.0))
    }

    /// Mark the download finished.
    pub fn download_done(&mut self) {
        if self.state == TaskState::Downloading {
            self.state = TaskState::Queued;
        }
    }

    /// Start or resume execution.
    pub fn start(&mut self) {
        debug_assert!(self.is_runnable(), "start on non-runnable task");
        if self.state != TaskState::Running {
            if !self.in_memory {
                // Resuming from disk: roll back to the last checkpoint.
                let lost = self.progress - self.checkpointed;
                if lost > 0.0 {
                    self.rollback_waste += lost;
                    self.progress = self.checkpointed;
                }
            }
            self.state = TaskState::Running;
            self.in_memory = true;
            self.run_start_progress = self.progress;
        }
    }

    /// Advance execution by `dt` dedicated seconds; returns `true` on
    /// completion. Checkpoints occur at multiples of the period.
    pub fn advance(&mut self, dt: SimDuration, now: SimTime) -> bool {
        debug_assert!(self.is_running());
        self.progress += dt.secs();
        if let Some(cp) = self.spec.checkpoint_period {
            let cp = cp.secs();
            if cp > 0.0 {
                self.checkpointed = (self.progress / cp).floor() * cp;
            }
        }
        if self.progress >= self.spec.duration.secs() - 1e-9 {
            self.progress = self.spec.duration.secs();
            self.checkpointed = self.progress;
            self.state = TaskState::Completed;
            self.completed_at = Some(now);
            true
        } else {
            false
        }
    }

    /// Stop execution. If `keep_in_memory` is false the task will resume
    /// from its last checkpoint (rollback applied lazily at [`Task::start`]).
    pub fn preempt(&mut self, keep_in_memory: bool) {
        debug_assert!(self.is_running());
        self.state = TaskState::Preempted;
        self.in_memory = keep_in_memory;
    }

    /// Has this running task checkpointed since it last started? The
    /// scheduler gives uncheckpointed running jobs precedence over all
    /// others (§3.3) to avoid losing their progress.
    pub fn checkpointed_since_start(&self) -> bool {
        // True when a checkpoint boundary has been crossed since the task
        // (re)started, or it simply hasn't run yet.
        self.progress <= self.run_start_progress
            || self.checkpointed > self.run_start_progress + 1e-9
    }

    /// Wall time to completion at allocation fraction `rate` (1.0 =
    /// dedicated).
    pub fn eta(&self, rate: f64) -> SimDuration {
        if rate <= 0.0 {
            SimDuration::INFINITE
        } else {
            self.remaining() / rate
        }
    }

    /// Did the task finish by its deadline? Meaningful once completed.
    pub fn met_deadline(&self) -> bool {
        self.completed_at.is_some_and(|t| t <= self.spec.deadline())
    }

    /// Mark the task permanently failed (retry budget exhausted).
    pub fn error(&mut self) {
        self.state = TaskState::Error;
        self.in_memory = false;
    }

    pub fn is_errored(&self) -> bool {
        self.state == TaskState::Error
    }

    /// Host crash: all unsaved progress is lost immediately (the rollback
    /// is applied eagerly, unlike [`Task::preempt`], because the in-memory
    /// image is gone). Running or preempted tasks drop to their last
    /// checkpoint; returns the execution seconds lost.
    pub fn crash(&mut self) -> f64 {
        if self.state == TaskState::Running {
            self.state = TaskState::Preempted;
        }
        self.in_memory = false;
        let lost = self.progress - self.checkpointed;
        if lost > 0.0 {
            self.rollback_waste += lost;
            self.progress = self.checkpointed;
            self.run_start_progress = self.run_start_progress.min(self.progress);
            lost
        } else {
            0.0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bce_types::{AppId, JobId, ProjectId, ResourceUsage};

    fn spec(duration: f64, checkpoint: Option<f64>) -> JobSpec {
        JobSpec {
            id: JobId(1),
            project: ProjectId(0),
            app: AppId(0),
            usage: ResourceUsage::one_cpu(),
            duration: SimDuration::from_secs(duration),
            duration_est: SimDuration::from_secs(duration),
            latency_bound: SimDuration::from_secs(2.0 * duration),
            checkpoint_period: checkpoint.map(SimDuration::from_secs),
            working_set_bytes: 1e8,
            input_bytes: 0.0,
            output_bytes: 0.0,
            received: SimTime::ZERO,
        }
    }

    fn t(s: f64) -> SimTime {
        SimTime::from_secs(s)
    }
    fn d(s: f64) -> SimDuration {
        SimDuration::from_secs(s)
    }

    #[test]
    fn runs_to_completion() {
        let mut task = Task::new(spec(100.0, Some(10.0)));
        assert_eq!(task.state(), TaskState::Queued);
        task.start();
        assert!(!task.advance(d(50.0), t(50.0)));
        assert_eq!(task.progress(), 50.0);
        assert!((task.fraction_done() - 0.5).abs() < 1e-12);
        assert!(task.advance(d(50.0), t(100.0)));
        assert!(task.is_complete());
        assert_eq!(task.completed_at, Some(t(100.0)));
        assert!(task.met_deadline());
        assert_eq!(task.remaining(), SimDuration::ZERO);
    }

    #[test]
    fn preempt_in_memory_preserves_progress() {
        let mut task = Task::new(spec(100.0, Some(10.0)));
        task.start();
        task.advance(d(15.0), t(15.0));
        task.preempt(true);
        task.start();
        assert_eq!(task.progress(), 15.0);
        assert_eq!(task.rollback_waste, 0.0);
    }

    #[test]
    fn preempt_out_of_memory_rolls_back_to_checkpoint() {
        let mut task = Task::new(spec(100.0, Some(10.0)));
        task.start();
        task.advance(d(17.0), t(17.0));
        task.preempt(false);
        task.start();
        assert_eq!(task.progress(), 10.0); // checkpoint at 10 s
        assert!((task.rollback_waste - 7.0).abs() < 1e-9);
    }

    #[test]
    fn non_checkpointing_app_loses_everything() {
        let mut task = Task::new(spec(100.0, None));
        task.start();
        task.advance(d(60.0), t(60.0));
        task.preempt(false);
        task.start();
        assert_eq!(task.progress(), 0.0);
        assert_eq!(task.rollback_waste, 60.0);
    }

    #[test]
    fn checkpointed_since_start_flag() {
        let mut task = Task::new(spec(100.0, Some(10.0)));
        task.start();
        assert!(task.checkpointed_since_start()); // hasn't run yet
        task.advance(d(5.0), t(5.0));
        assert!(!task.checkpointed_since_start());
        task.advance(d(6.0), t(11.0)); // crosses the 10 s checkpoint
        assert!(task.checkpointed_since_start());
        // Resume after checkpoint: flag resets.
        task.preempt(true);
        task.start();
        task.advance(d(5.0), t(16.0));
        assert!(!task.checkpointed_since_start());
    }

    #[test]
    fn download_gate() {
        let mut s = spec(100.0, Some(10.0));
        s.input_bytes = 1e6;
        let mut task = Task::new(s);
        assert_eq!(task.state(), TaskState::Downloading);
        assert!(!task.is_runnable());
        task.download_done();
        assert_eq!(task.state(), TaskState::Queued);
        assert!(task.is_runnable());
    }

    #[test]
    fn eta_and_estimates() {
        let mut s = spec(100.0, Some(10.0));
        s.duration_est = d(80.0); // underestimate
        let mut task = Task::new(s);
        task.start();
        task.advance(d(90.0), t(90.0));
        // True remaining: 10 s; estimated remaining floors at 1 s.
        assert_eq!(task.remaining(), d(10.0));
        assert_eq!(task.remaining_est(), d(1.0));
        assert_eq!(task.eta(0.5), d(20.0));
        assert_eq!(task.eta(0.0), SimDuration::INFINITE);
    }

    #[test]
    fn crash_rolls_back_to_checkpoint_eagerly() {
        let mut task = Task::new(spec(100.0, Some(10.0)));
        task.start();
        task.advance(d(27.0), t(27.0));
        let lost = task.crash();
        assert!((lost - 7.0).abs() < 1e-9);
        assert_eq!(task.state(), TaskState::Preempted);
        assert_eq!(task.progress(), 20.0); // eager rollback, unlike preempt
        assert!((task.rollback_waste - 7.0).abs() < 1e-9);
        // Resuming does not double-count the rollback.
        task.start();
        assert_eq!(task.progress(), 20.0);
        assert!((task.rollback_waste - 7.0).abs() < 1e-9);
    }

    #[test]
    fn crash_on_queued_task_is_free() {
        let mut task = Task::new(spec(100.0, Some(10.0)));
        assert_eq!(task.crash(), 0.0);
        assert_eq!(task.state(), TaskState::Queued);
        assert!(task.is_runnable());
    }

    #[test]
    fn errored_task_is_not_runnable() {
        let mut task = Task::new(spec(100.0, Some(10.0)));
        task.error();
        assert!(task.is_errored());
        assert!(!task.is_runnable());
        assert!(!task.is_complete());
    }

    #[test]
    fn missed_deadline_detected() {
        let mut s = spec(100.0, Some(10.0));
        s.latency_bound = d(50.0);
        let mut task = Task::new(s);
        task.start();
        task.advance(d(100.0), t(100.0));
        assert!(task.is_complete());
        assert!(!task.met_deadline());
    }
}

//! The emulated BOINC client: owns the task queue, accounting, transfer
//! queues and policy state, and exposes the operations the emulator's
//! event loop drives (advance time, reschedule, decide fetches, ingest
//! replies).
//!
//! This module is the "emulation" half of BCE (§4.3): job scheduling, job
//! fetch and preference enforcement behave as the real client; job
//! execution, servers and availability are simulated around it.

use crate::accounting::{Accounting, AccountingSnapshot, UsageSample};
use crate::fetch::{self, Backoff, FetchDecision, FetchPolicy, FetchProject};
use crate::rr_sim::{self, RrJob, RrOutcome, RrPlatform, RrScratch};
use crate::sched::{self, JobSchedPolicy, PlanInput, PlanScratch};
use crate::task::{Task, TaskSnapshot, TaskState};
use crate::xfer::{NetworkModel, Transfers};
use bce_avail::HostRunState;
use bce_faults::{RetryPolicy, RetryState, RetryVerdict, TransferFaultModel};
use bce_sim::Rng;
use bce_types::{
    Hardware, JobId, JobSpec, Preferences, ProcMap, ProcType, ProjectId, SimDuration, SimTime,
};

/// Client-wide policy/configuration knobs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClientConfig {
    pub sched_policy: JobSchedPolicy,
    pub fetch_policy: FetchPolicy,
    /// Half-life `A` of the REC average (global accounting; Figure 6).
    pub rec_half_life: SimDuration,
    /// Optional link model; `None` = transfers are instant.
    pub network: Option<NetworkModel>,
}

impl Default for ClientConfig {
    /// The paper's "current" policy set: global accounting with EDF
    /// promotion and hysteresis-based fetch.
    fn default() -> Self {
        ClientConfig {
            sched_policy: JobSchedPolicy::GLOBAL,
            fetch_policy: FetchPolicy::Hysteresis,
            rec_half_life: SimDuration::from_days(10.0),
            network: None,
        }
    }
}

/// Client-side per-project state.
#[derive(Debug, Clone)]
pub struct ClientProject {
    pub id: ProjectId,
    pub name: String,
    pub share: f64,
    /// Which processor types the project supplies jobs for.
    pub supplies: ProcMap<bool>,
    backoff: Backoff,
    /// Backoff for *transient* communication failures (injected faults),
    /// kept separate from `backoff` so scheduled downtime and transient
    /// loss take distinct escalation paths.
    comm_retry: RetryState,
    /// Server-imposed minimum delay until the next RPC.
    next_rpc_allowed: SimTime,
}

impl ClientProject {
    /// Consecutive transient communication failures (for logs/tests).
    pub fn comm_failures(&self) -> u32 {
        self.comm_retry.consecutive_failures()
    }

    /// Earliest time the scheduled-downtime backoff allows another RPC.
    pub fn backoff_until(&self) -> SimTime {
        self.backoff.until()
    }
}

/// Which transfer queue a retry belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum XferDir {
    Download,
    Upload,
}

/// Backoff state for a failed transfer awaiting its next attempt. The
/// entry persists across attempts (so consecutive-failure counts survive
/// re-enqueues) and is dropped on completion or give-up.
#[derive(Debug, Clone)]
struct XferRetry {
    job: JobId,
    dir: XferDir,
    bytes: f64,
    state: RetryState,
}

/// What changed during [`Client::advance`].
#[derive(Debug, Clone, Default)]
pub struct AdvanceEvents {
    /// Jobs whose computation completed in the interval.
    pub computed: Vec<JobId>,
    /// Jobs whose input download finished (now runnable).
    pub ready: Vec<JobId>,
    /// Jobs whose output upload finished (now reportable).
    pub uploaded: Vec<JobId>,
    /// Jobs permanently failed (transfer retry budget exhausted).
    pub errored: Vec<JobId>,
    /// Transfer attempts that failed mid-flight in the interval (each will
    /// retry unless its job appears in `errored`).
    pub transfer_failures: u64,
    /// Per-attempt detail behind `transfer_failures`: `(job, upload)` for
    /// each failed attempt, in failure order (`upload == false` means a
    /// download). Only populated on fault paths, so the vector never
    /// allocates in fault-free runs.
    pub failed_transfers: Vec<(JobId, bool)>,
}

/// What changed during [`Client::reschedule`]. The RR snapshot the decision
/// was based on is available via [`Client::rr_snapshot`].
#[derive(Debug, Clone, Default)]
pub struct Reschedule {
    pub started: Vec<JobId>,
    pub preempted: Vec<JobId>,
}

/// Counters for the cached RR simulation (see [`Client::rr_refresh`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RrStats {
    /// Times a decision point asked for the RR snapshot.
    pub queries: u64,
    /// Times the simulation actually ran (cache misses).
    pub runs: u64,
    /// Queries served from the retained snapshot inside the frozen-progress
    /// window (partial refreshes; a subset of [`RrStats::hits`]).
    pub frozen: u64,
}

impl RrStats {
    pub fn hits(&self) -> u64 {
        self.queries - self.runs
    }
    pub fn hit_rate(&self) -> f64 {
        if self.queries == 0 {
            0.0
        } else {
            self.hits() as f64 / self.queries as f64
        }
    }
}

/// Severity of the dirt accumulated since the last full RR simulation.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum DirtClass {
    /// Nothing relevant changed.
    #[default]
    Clean,
    /// Only running-task progress drifted (monotone remaining-estimate
    /// decay, or a start-rollback to the last task checkpoint). The group
    /// structure of the queue is unchanged.
    Progress,
    /// Structural change: job arrival/removal, task error, crash loss,
    /// share/preference change, or an explicit invalidation. The retained
    /// snapshot may be arbitrarily wrong.
    Global,
}

impl DirtClass {
    pub fn name(&self) -> &'static str {
        match self {
            DirtClass::Clean => "clean",
            DirtClass::Progress => "progress",
            DirtClass::Global => "global",
        }
    }

    pub fn from_name(s: &str) -> Option<Self> {
        match s {
            "clean" => Some(DirtClass::Clean),
            "progress" => Some(DirtClass::Progress),
            "global" => Some(DirtClass::Global),
            _ => None,
        }
    }
}

/// Tracks which `(proc type, project)` groups client mutations touched
/// since the last full RR simulation, and how severe the dirt is. Drives
/// the refresh ladder in [`Client::rr_refresh`]: progress-only dirt inside
/// the frozen window keeps the retained snapshot; global dirt always forces
/// a full re-simulation.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct DirtyGroups {
    class: DirtClass,
    /// Dirtied groups, deduped, in first-touch order. Bounded: once more
    /// than [`DirtyGroups::MAX_GROUPS`] distinct groups are touched the
    /// tracker escalates to [`DirtClass::Global`] (a mutation storm that
    /// wide will be re-simulated anyway).
    groups: Vec<(ProcType, ProjectId)>,
}

impl DirtyGroups {
    const MAX_GROUPS: usize = 32;

    /// Record progress-class dirt against one group.
    fn mark_progress(&mut self, pt: ProcType, project: ProjectId) {
        if self.class == DirtClass::Global {
            return;
        }
        if self.class == DirtClass::Clean {
            self.class = DirtClass::Progress;
        }
        if !self.groups.contains(&(pt, project)) {
            if self.groups.len() >= Self::MAX_GROUPS {
                self.class = DirtClass::Global;
                return;
            }
            self.groups.push((pt, project));
        }
    }

    /// Record a structural (cross-group) mutation.
    fn mark_global(&mut self) {
        self.class = DirtClass::Global;
    }

    fn clear(&mut self) {
        self.class = DirtClass::Clean;
        self.groups.clear();
    }

    pub fn class(&self) -> DirtClass {
        self.class
    }

    /// The dirtied groups (meaningful for [`DirtClass::Progress`]).
    pub fn groups(&self) -> &[(ProcType, ProjectId)] {
        &self.groups
    }

    /// Rebuild from captured parts (checkpoint restore).
    pub fn from_parts(class: DirtClass, groups: Vec<(ProcType, ProjectId)>) -> Self {
        DirtyGroups { class, groups }
    }
}

/// Cache key for the RR snapshot: everything `rr_simulate`'s inputs depend
/// on besides client state, plus the client-state generation counter.
type RrKey = (SimTime, HostRunState, u64, u64);

/// The client's reusable heap buffers, extractable after a run and fed
/// back into the next client via [`Client::with_scratch`]. A worker that
/// emulates thousands of scenarios reuses one scratch so the task queue,
/// RR-simulation working state and accounting sample are allocated once
/// per worker instead of once per run. All buffers are cleared on reuse,
/// so a recycled client is bit-identical to a fresh one.
#[derive(Debug, Default)]
pub struct ClientScratch {
    tasks: Vec<Task>,
    finished: Vec<Task>,
    xfer_retries: Vec<XferRetry>,
    rr_jobs: Vec<RrJob>,
    rr_scratch: RrScratch,
    rr_cache: RrOutcome,
    usage_buf: UsageSample,
    plan_scratch: PlanScratch,
}

impl ClientScratch {
    pub fn new() -> Self {
        Self::default()
    }
}

/// Captured per-project client state (checkpointing).
#[derive(Debug, Clone)]
pub struct ProjectClientSnapshot {
    pub id: ProjectId,
    pub backoff: RetryState,
    pub comm_retry: RetryState,
    pub next_rpc_allowed: SimTime,
}

/// Captured backoff entry for one failed transfer awaiting retry.
#[derive(Debug, Clone)]
pub struct XferRetrySnapshot {
    pub job: JobId,
    /// `true` = upload queue, `false` = download queue.
    pub upload: bool,
    pub bytes: f64,
    pub state: RetryState,
}

/// Complete mutable state of the emulated client, for checkpointing.
///
/// Scenario constants (hardware, preferences, shares, policies, fault
/// models) are *not* captured: restore rebuilds the client through the
/// normal construction path and then overwrites the mutable state from
/// this snapshot. The RR cache (`rr_cache`/`rr_key`/`rr_stats`) is part of
/// the capture so the restored run reproduces the exact cache hit/miss
/// sequence — and therefore the `rr_runs` perf counter — of the
/// uninterrupted run.
#[derive(Debug, Clone)]
pub struct ClientSnapshot {
    pub projects: Vec<ProjectClientSnapshot>,
    pub tasks: Vec<TaskSnapshot>,
    pub finished: Vec<TaskSnapshot>,
    pub accounting: AccountingSnapshot,
    pub downloads: Vec<(JobId, f64, f64, Option<f64>)>,
    pub uploads: Vec<(JobId, f64, f64, Option<f64>)>,
    pub last_advance: SimTime,
    pub rpcs_issued: u64,
    /// Transfer-fault stream position; `None` when faults are disabled.
    pub xfer_faults_rng: Option<Rng>,
    pub xfer_retries: Vec<XferRetrySnapshot>,
    pub state_gen: u64,
    pub rr_cache: RrOutcome,
    pub rr_key: Option<(SimTime, HostRunState, u64, u64)>,
    pub rr_stats: RrStats,
    /// End of the retained snapshot's frozen-progress validity window.
    pub rr_frozen_until: SimTime,
    /// Dirt accumulated since the snapshot's last full simulation.
    pub rr_dirty: DirtyGroups,
}

/// The emulated client.
pub struct Client {
    pub cfg: ClientConfig,
    pub hw: Hardware,
    pub prefs: Preferences,
    projects: Vec<ClientProject>,
    tasks: Vec<Task>,
    finished: Vec<Task>,
    accounting: Accounting,
    transfers: Transfers,
    last_advance: SimTime,
    rpcs_issued: u64,
    /// Backoff policy for transient RPC failures (shared across projects).
    rpc_retry_policy: RetryPolicy,
    /// Transfer fault plan source; `None` = transfers never fail.
    xfer_faults: Option<TransferFaultModel>,
    /// Failed transfers awaiting their next attempt.
    xfer_retries: Vec<XferRetry>,
    /// Generation counter of RR-simulation-relevant client state; bumped by
    /// every mutation that can change the simulation's inputs (see the
    /// "Hot path & caching invariants" section of DESIGN.md).
    state_gen: u64,
    /// Reusable platform description: shares are fixed at construction,
    /// `now`/`ninstances`/`on_frac` are refreshed per simulation.
    rr_platform: RrPlatform,
    /// Reusable job-list buffer for the simulation.
    rr_jobs: Vec<RrJob>,
    rr_scratch: RrScratch,
    /// The cached simulation outcome; valid for `rr_key`, or — when only
    /// progress-class dirt accumulated — until `rr_frozen_until`.
    rr_cache: RrOutcome,
    rr_key: Option<RrKey>,
    rr_stats: RrStats,
    /// End of the frozen-progress window opened by the last full
    /// simulation (see `rr_refresh`). `SimTime::from_secs(f64::INFINITY)`
    /// when the simulated queue was empty (the outcome is then
    /// `now`-independent).
    rr_frozen_until: SimTime,
    /// Which groups mutations dirtied since the last full simulation.
    rr_dirty: DirtyGroups,
    /// Reusable accounting sample, refilled each advance.
    usage_buf: UsageSample,
    /// Reusable planner workspace ([`sched::plan_into`]).
    plan_scratch: PlanScratch,
}

/// What a host crash destroyed (see [`Client::crash`]).
#[derive(Debug, Clone, Default)]
pub struct CrashOutcome {
    /// `(job, execution seconds lost)` for every task rolled back to its
    /// last checkpoint.
    pub lost: Vec<(JobId, f64)>,
    /// Number of in-flight transfers restarted from byte zero.
    pub restarted_transfers: usize,
}

impl Client {
    pub fn new(
        hw: Hardware,
        prefs: Preferences,
        projects: Vec<ClientProject>,
        cfg: ClientConfig,
    ) -> Self {
        Self::with_scratch(hw, prefs, projects, cfg, ClientScratch::default())
    }

    /// As [`Client::new`], but recycling the heap buffers of a previous
    /// client (see [`ClientScratch`]). Buffers are cleared before reuse;
    /// behaviour is bit-identical to a freshly allocated client.
    pub fn with_scratch(
        hw: Hardware,
        prefs: Preferences,
        projects: Vec<ClientProject>,
        cfg: ClientConfig,
        scratch: ClientScratch,
    ) -> Self {
        let ClientScratch {
            mut tasks,
            mut finished,
            mut xfer_retries,
            mut rr_jobs,
            rr_scratch,
            rr_cache,
            mut usage_buf,
            plan_scratch,
        } = scratch;
        tasks.clear();
        finished.clear();
        xfer_retries.clear();
        rr_jobs.clear();
        usage_buf.clear();
        // `rr_scratch` and `rr_cache` are fully overwritten by every
        // simulation call, and `rr_key: None` below guarantees the first
        // snapshot query re-runs the simulation before anything reads the
        // recycled cache contents.
        let accounting = Accounting::new(
            cfg.sched_policy.accounting,
            projects.iter().map(|p| (p.id, p.share)),
            cfg.rec_half_life,
        );
        let transfers = Transfers::new(cfg.network);
        let rr_platform = RrPlatform {
            now: SimTime::ZERO,
            ninstances: ProcMap::zero(),
            on_frac: 1.0,
            shares: projects.iter().map(|p| (p.id, p.share)).collect(),
        };
        Client {
            cfg,
            hw,
            prefs,
            projects,
            tasks,
            finished,
            accounting,
            transfers,
            last_advance: SimTime::ZERO,
            rpcs_issued: 0,
            rpc_retry_policy: RetryPolicy::SCHEDULER_RPC,
            xfer_faults: None,
            xfer_retries,
            state_gen: 0,
            rr_platform,
            rr_jobs,
            rr_scratch,
            rr_cache,
            rr_key: None,
            rr_stats: RrStats::default(),
            rr_frozen_until: SimTime::ZERO,
            rr_dirty: DirtyGroups::default(),
            usage_buf,
            plan_scratch,
        }
    }

    /// Tear the client down, handing back its reusable buffers for the
    /// next run (the arena path's per-worker emulator reuse).
    pub fn into_scratch(self) -> ClientScratch {
        ClientScratch {
            tasks: self.tasks,
            finished: self.finished,
            xfer_retries: self.xfer_retries,
            rr_jobs: self.rr_jobs,
            rr_scratch: self.rr_scratch,
            rr_cache: self.rr_cache,
            usage_buf: self.usage_buf,
            plan_scratch: self.plan_scratch,
        }
    }

    /// Override the transient-RPC backoff policy (defaults to
    /// [`RetryPolicy::SCHEDULER_RPC`]).
    pub fn set_rpc_retry_policy(&mut self, policy: RetryPolicy) {
        self.rpc_retry_policy = policy;
    }

    /// Install a transfer fault plan: subsequent transfer attempts may be
    /// planned to fail mid-flight and retry under the model's policy.
    pub fn set_transfer_faults(&mut self, model: TransferFaultModel) {
        self.xfer_faults = Some(model);
    }

    /// Build per-project state from `(id, name, share, supplied types)`.
    pub fn project(
        id: u32,
        name: impl Into<String>,
        share: f64,
        supplies: &[ProcType],
    ) -> ClientProject {
        let mut s = ProcMap::from_fn(|_| false);
        for &t in supplies {
            s[t] = true;
        }
        ClientProject {
            id: ProjectId(id),
            name: name.into(),
            share,
            supplies: s,
            backoff: Backoff::new(),
            comm_retry: RetryState::new(),
            next_rpc_allowed: SimTime::ZERO,
        }
    }

    pub fn tasks(&self) -> &[Task] {
        &self.tasks
    }

    pub fn finished(&self) -> &[Task] {
        &self.finished
    }

    pub fn accounting(&self) -> &Accounting {
        &self.accounting
    }

    pub fn projects(&self) -> &[ClientProject] {
        &self.projects
    }

    pub fn rpcs_issued(&self) -> u64 {
        self.rpcs_issued
    }

    /// Is this job's input download still in flight (or awaiting retry)?
    pub fn transfers_pending_download(&self, id: JobId) -> bool {
        self.transfers.downloads.contains(id)
            || self.xfer_retries.iter().any(|r| r.job == id && r.dir == XferDir::Download)
    }

    fn task_mut(&mut self, id: JobId) -> Option<&mut Task> {
        self.tasks.iter_mut().find(|t| t.spec.id == id)
    }

    pub fn task(&self, id: JobId) -> Option<&Task> {
        self.tasks.iter().find(|t| t.spec.id == id)
    }

    /// RAM budget under the busy/idle preference pair.
    pub fn mem_budget(&self, run_state: HostRunState) -> f64 {
        let frac = if run_state.user_active {
            self.prefs.ram_max_frac_busy
        } else {
            self.prefs.ram_max_frac_idle
        };
        self.hw.mem_bytes * frac
    }

    /// Restore an in-flight job from an imported state file, with its
    /// recorded execution progress.
    pub fn add_initial_task(&mut self, spec: JobSpec, progress: SimDuration) {
        let task = Task::with_progress(spec, progress);
        if task.state() == TaskState::Downloading {
            self.enqueue_transfer(task.spec.id, task.spec.input_bytes, XferDir::Download);
        }
        self.tasks.push(task);
        self.state_gen += 1;
        self.rr_dirty.mark_global();
    }

    /// Queue a transfer attempt, consulting the fault plan (if any) for a
    /// mid-flight failure point.
    fn enqueue_transfer(&mut self, job: JobId, bytes: f64, dir: XferDir) {
        let fail_after = self.xfer_faults.as_mut().and_then(|m| m.plan_attempt(bytes));
        match dir {
            XferDir::Download => self.transfers.downloads.enqueue_faulty(job, bytes, fail_after),
            XferDir::Upload => self.transfers.uploads.enqueue_faulty(job, bytes, fail_after),
        };
    }

    /// Can this job ever run on this host? (The real client errors out
    /// tasks that need more instances than the host has.)
    pub fn job_feasible(&self, spec: &JobSpec) -> bool {
        ProcType::ALL
            .iter()
            .all(|&t| spec.usage.instances_of(t) <= self.hw.ninstances(t) as f64 + 1e-9)
    }

    /// Ingest jobs from a scheduler reply. Infeasible jobs are rejected
    /// (client-side error, as in the real client) and their ids returned.
    pub fn add_jobs(&mut self, jobs: Vec<JobSpec>) -> Vec<JobId> {
        let mut rejected = Vec::new();
        let mut accepted_any = false;
        for spec in jobs {
            if !self.job_feasible(&spec) {
                rejected.push(spec.id);
                continue;
            }
            let task = Task::new(spec);
            if task.state() == TaskState::Downloading {
                self.enqueue_transfer(task.spec.id, task.spec.input_bytes, XferDir::Download);
            }
            self.tasks.push(task);
            accepted_any = true;
        }
        if accepted_any {
            self.state_gen += 1;
            self.rr_dirty.mark_global();
        }
        rejected
    }

    /// Progress running tasks, transfers and accounting to `now`. The
    /// running set and run state must be constant over the interval (the
    /// emulator reschedules at every event boundary).
    pub fn advance(&mut self, now: SimTime, run_state: HostRunState) -> AdvanceEvents {
        let mut ev = AdvanceEvents::default();
        let dt = now - self.last_advance;
        if !dt.is_positive() {
            self.last_advance = now;
            return ev;
        }

        // Accounting sees the interval's usage before tasks mutate.
        Self::fill_usage_sample(&self.projects, &self.tasks, &self.hw, &mut self.usage_buf);
        self.accounting.update(self.last_advance, now, &self.hw, &self.usage_buf);

        // Transfers progress first: uploads enqueued by completions later
        // in this interval must not receive this interval's bandwidth.
        let dl = self.transfers.downloads.advance(dt, run_state.net_up);
        for &id in &dl.completed {
            if let Some(task) = self.task_mut(id) {
                task.download_done();
                ev.ready.push(id);
            }
        }
        let ul = self.transfers.uploads.advance(dt, run_state.net_up);
        ev.uploaded.extend(ul.completed.iter().copied());
        // Finished transfers clear their retry state.
        if !self.xfer_retries.is_empty() {
            self.xfer_retries.retain(|r| match r.dir {
                XferDir::Download => !dl.completed.contains(&r.job),
                XferDir::Upload => !ul.completed.contains(&r.job),
            });
        }
        for id in dl.failed {
            self.transfer_failed(now, id, XferDir::Download, &mut ev);
        }
        for id in ul.failed {
            self.transfer_failed(now, id, XferDir::Upload, &mut ev);
        }

        let mut progressed = false;
        for task in &mut self.tasks {
            if task.is_running() {
                progressed = true;
                self.rr_dirty.mark_progress(task.spec.usage.main_proc_type(), task.spec.project);
                if task.advance(dt, now) {
                    ev.computed.push(task.spec.id);
                }
            }
        }
        // Completed jobs with output files start uploading; others are
        // immediately reportable (handled by the caller).
        for i in 0..ev.computed.len() {
            let id = ev.computed[i];
            let out_bytes = self.task(id).map(|t| t.spec.output_bytes).unwrap_or(0.0);
            if out_bytes > 0.0 {
                self.enqueue_transfer(id, out_bytes, XferDir::Upload);
            } else {
                ev.uploaded.push(id);
            }
        }

        // Re-attempt transfers whose backoff has expired.
        self.release_due_transfer_retries(now);

        // Running tasks gained progress and errored tasks left the queue,
        // both of which change the RR simulation's inputs. Transfer-only
        // activity does not (downloading tasks are simulated either way).
        if progressed || !ev.errored.is_empty() {
            self.state_gen += 1;
        }
        if !ev.errored.is_empty() {
            self.rr_dirty.mark_global();
        }
        self.last_advance = now;
        ev
    }

    /// A transfer attempt failed: escalate its backoff, or error the job
    /// once the policy's give-up limit is hit.
    fn transfer_failed(&mut self, now: SimTime, job: JobId, dir: XferDir, ev: &mut AdvanceEvents) {
        ev.transfer_failures += 1;
        ev.failed_transfers.push((job, matches!(dir, XferDir::Upload)));
        let bytes = match (dir, self.task(job)) {
            (XferDir::Download, Some(t)) => t.spec.input_bytes,
            (XferDir::Upload, Some(t)) => t.spec.output_bytes,
            (_, None) => return,
        };
        let (policy, jitter_u) = match self.xfer_faults.as_mut() {
            Some(m) => (m.retry, m.jitter_u()),
            None => (RetryPolicy::TRANSFER, 0.0),
        };
        let entry = match self.xfer_retries.iter_mut().find(|r| r.job == job && r.dir == dir) {
            Some(r) => r,
            None => {
                self.xfer_retries.push(XferRetry { job, dir, bytes, state: RetryState::new() });
                self.xfer_retries.last_mut().unwrap()
            }
        };
        match entry.state.fail(now, &policy, jitter_u) {
            RetryVerdict::RetryAt(_) => {}
            RetryVerdict::GiveUp => {
                self.xfer_retries.retain(|r| !(r.job == job && r.dir == dir));
                if let Some(task) = self.task_mut(job) {
                    task.error();
                }
                ev.errored.push(job);
            }
        }
    }

    /// Re-enqueue failed transfers whose backoff window has passed. Each
    /// new attempt gets a fresh fault plan; the retry entry persists so
    /// consecutive-failure counts accumulate toward the give-up limit.
    fn release_due_transfer_retries(&mut self, now: SimTime) {
        for i in 0..self.xfer_retries.len() {
            let (job, dir, bytes, until) = {
                let r = &self.xfer_retries[i];
                (r.job, r.dir, r.bytes, r.state.until)
            };
            if until > now {
                continue;
            }
            let in_flight = match dir {
                XferDir::Download => self.transfers.downloads.contains(job),
                XferDir::Upload => self.transfers.uploads.contains(job),
            };
            if !in_flight {
                self.enqueue_transfer(job, bytes, dir);
            }
        }
    }

    /// Usage/runnability snapshot for accounting, refilled into a reusable
    /// buffer (this runs once per event interval).
    fn fill_usage_sample(
        projects: &[ClientProject],
        tasks: &[Task],
        hw: &Hardware,
        sample: &mut UsageSample,
    ) {
        sample.clear();
        for p in projects {
            for t in ProcType::ALL {
                if p.supplies[t] && hw.ninstances(t) > 0 {
                    sample.fetchable[t].push(p.id);
                }
            }
        }
        for task in tasks {
            if task.is_running() {
                let entry = sample.used_entry(task.spec.project);
                entry[ProcType::Cpu] += task.spec.usage.avg_cpus;
                if let Some((t, n)) = task.spec.usage.coproc {
                    entry[t] += n;
                }
            }
            if !task.is_complete() && !task.is_errored() {
                let t = task.spec.usage.main_proc_type();
                let list = &mut sample.runnable[t];
                if !list.contains(&task.spec.project) {
                    list.push(task.spec.project);
                }
            }
        }
    }

    /// Usable instances per type under the current run state and
    /// preference limits.
    fn rr_ninstances(&self, run_state: HostRunState) -> ProcMap<f64> {
        ProcMap::from_fn(|t| match t {
            ProcType::Cpu => {
                if run_state.can_compute {
                    self.prefs.usable_cpus(self.hw.ninstances(ProcType::Cpu)) as f64
                } else {
                    0.0
                }
            }
            _ => {
                if run_state.can_gpu {
                    self.hw.ninstances(t) as f64
                } else {
                    0.0
                }
            }
        })
    }

    /// Collect the RR-simulation view of the current queue into `out`.
    /// Includes every uncompleted task (even ones still downloading): they
    /// are committed work for queue-sizing purposes.
    fn collect_rr_jobs(tasks: &[Task], out: &mut Vec<RrJob>) {
        out.clear();
        out.extend(tasks.iter().filter(|t| !t.is_complete() && !t.is_errored()).map(|t| RrJob {
            id: t.spec.id,
            project: t.spec.project,
            proc_type: t.spec.usage.main_proc_type(),
            instances: t.spec.usage.instances_of(t.spec.usage.main_proc_type()),
            remaining: t.remaining_est(),
            deadline: t.spec.deadline(),
        }));
    }

    /// Run the round-robin simulation over the current queue (§3.2), with
    /// the shortfall horizon at `max_queue`. Uncached: allocates fresh
    /// working state per call. Decision paths use [`Client::rr_refresh`] /
    /// [`Client::rr_snapshot`] instead.
    pub fn rr_simulate(&self, now: SimTime, run_state: HostRunState, on_frac: f64) -> RrOutcome {
        let platform = RrPlatform {
            now,
            ninstances: self.rr_ninstances(run_state),
            on_frac,
            shares: self.projects.iter().map(|p| (p.id, p.share)).collect(),
        };
        let mut jobs = Vec::new();
        Self::collect_rr_jobs(&self.tasks, &mut jobs);
        rr_sim::simulate(&platform, &jobs, self.prefs.work_buf_max())
    }

    /// Mark the cached RR snapshot stale. Called internally by every
    /// mutation that changes the simulation's inputs; call it manually
    /// after mutating the public `hw`/`prefs` fields directly.
    pub fn invalidate_rr(&mut self) {
        self.state_gen += 1;
        self.rr_dirty.mark_global();
    }

    /// Current value of the RR-relevant state generation counter.
    pub fn rr_generation(&self) -> u64 {
        self.state_gen
    }

    /// Cache-hit counters for the RR simulation.
    pub fn rr_stats(&self) -> RrStats {
        self.rr_stats
    }

    /// The cached RR snapshot from the last [`Client::rr_refresh`].
    pub fn rr_snapshot(&self) -> &RrOutcome {
        &self.rr_cache
    }

    /// Fraction of the tightest job's deadline slack the frozen-progress
    /// window may cover. Bounds the classification drift of serving a
    /// retained snapshot: a job's endangered/safe verdict can flip at most
    /// ~2τ of slack early or late, i.e. ≤ ~10% of the tightest slack —
    /// small against the latency bounds that set the slack, and further
    /// capped by an eighth of the minimum work buffer below (shortfall
    /// staleness must stay small against the buffer depth that triggers
    /// fetches, or shallow-queue scenarios drift visibly; the paper's
    /// Figure 3 scenario is the sentinel for that regime).
    const FROZEN_SLACK_FRAC: f64 = 0.05;

    /// End of the frozen-progress validity window opened by a full
    /// simulation at `now` over `jobs`: `now + τ` with
    /// `τ = clamp(0.05 · min slack, 0, 0.125 · work_buf_min)`. An empty
    /// queue's outcome is `now`-independent, so its window never closes.
    fn frozen_until(now: SimTime, jobs: &[RrJob], prefs: &Preferences) -> SimTime {
        // True slack — time to the deadline minus the remaining compute —
        // not mere deadline distance: a long job close to its deadline has
        // tiny slack even when the deadline itself is far away, and the
        // endangered/safe verdict drifts on the slack scale.
        let mut min_slack = f64::INFINITY;
        for j in jobs {
            min_slack = min_slack.min((j.deadline - now).secs() - j.remaining.secs());
        }
        if min_slack.is_infinite() {
            return SimTime::from_secs(f64::INFINITY);
        }
        let cap = 0.125 * prefs.work_buf_min.secs();
        let tau = (Self::FROZEN_SLACK_FRAC * min_slack).clamp(0.0, cap.max(0.0));
        now + SimDuration::from_secs(tau)
    }

    /// Ensure the cached RR snapshot is valid for `(now, run_state,
    /// on_frac)` and the current client state, re-running the simulation
    /// only if something relevant changed since the previous call. The
    /// refreshed snapshot is read via [`Client::rr_snapshot`].
    ///
    /// Refresh ladder:
    /// 1. *Pure hit*: the key (including the state generation) matches —
    ///    the snapshot is exact.
    /// 2. *Frozen hit*: only progress-class dirt accumulated since the
    ///    last full simulation, the platform (run state, `on_frac`) is
    ///    unchanged and `now` is still inside the frozen window — the
    ///    retained snapshot is served as-is. Running-task progress only
    ///    drifts job completion estimates by at most the window length τ,
    ///    which [`Client::frozen_until`] bounds to a small fraction of the
    ///    tightest deadline slack and of the minimum work buffer, so
    ///    endangered-set and fetch-trigger decisions move by at most that
    ///    bounded amount.
    /// 3. *Full run*: anything else (global dirt, platform change, window
    ///    expired) re-simulates from the live queue.
    pub fn rr_refresh(&mut self, now: SimTime, run_state: HostRunState, on_frac: f64) {
        self.rr_stats.queries += 1;
        let key: RrKey = (now, run_state, on_frac.to_bits(), self.state_gen);
        if self.rr_key == Some(key) {
            return;
        }
        if self.rr_dirty.class() != DirtClass::Global
            && now <= self.rr_frozen_until
            && matches!(self.rr_key, Some((k_now, k_rs, k_of, _))
                if k_rs == run_state && k_of == on_frac.to_bits() && k_now <= now)
        {
            self.rr_stats.frozen += 1;
            // Re-key so repeated queries at this instant become pure hits;
            // the frozen window stays anchored at the last full simulation.
            self.rr_key = Some(key);
            return;
        }
        self.rr_stats.runs += 1;
        self.rr_platform.now = now;
        self.rr_platform.ninstances = self.rr_ninstances(run_state);
        self.rr_platform.on_frac = on_frac;
        Self::collect_rr_jobs(&self.tasks, &mut self.rr_jobs);
        rr_sim::simulate_into(
            &self.rr_platform,
            &self.rr_jobs,
            self.prefs.work_buf_max(),
            &mut self.rr_scratch,
            &mut self.rr_cache,
        );
        self.rr_dirty.clear();
        self.rr_frozen_until = Self::frozen_until(now, &self.rr_jobs, &self.prefs);
        self.rr_key = Some(key);
    }

    /// The dirt tracker's current view (observability/tests).
    pub fn rr_dirty(&self) -> &DirtyGroups {
        &self.rr_dirty
    }

    /// Apply the job-scheduling policy (§3.3): start/preempt tasks so the
    /// running set matches the plan.
    pub fn reschedule(
        &mut self,
        now: SimTime,
        run_state: HostRunState,
        on_frac: f64,
    ) -> Reschedule {
        self.rr_refresh(now, run_state, on_frac);
        let plan = {
            let input = PlanInput {
                now,
                tasks: &self.tasks,
                rr: &self.rr_cache,
                accounting: &self.accounting,
                hw: &self.hw,
                prefs: &self.prefs,
                run_state,
                mem_budget: self.mem_budget(run_state),
            };
            sched::plan_into(self.cfg.sched_policy, &input, &mut self.plan_scratch)
        };
        let mut started = Vec::new();
        let mut preempted = Vec::new();
        let mut progress_changed = false;
        let keep_in_memory = self.prefs.leave_apps_in_memory;
        for (i, task) in self.tasks.iter_mut().enumerate() {
            let should_run = plan.contains(i);
            if task.is_running() && !should_run {
                task.preempt(keep_in_memory);
                preempted.push(task.spec.id);
            } else if !task.is_running() && should_run {
                // Starting an evicted task rolls it back to its last
                // checkpoint, which changes its remaining estimate.
                let before = task.progress();
                task.start();
                if task.progress() != before {
                    progress_changed = true;
                    self.rr_dirty
                        .mark_progress(task.spec.usage.main_proc_type(), task.spec.project);
                }
                started.push(task.spec.id);
            }
        }
        if progress_changed {
            self.state_gen += 1;
        }
        Reschedule { started, preempted }
    }

    /// Apply the job-fetch policy (§3.4) to the given RR snapshot.
    pub fn fetch_decision(
        &self,
        now: SimTime,
        run_state: HostRunState,
        rr: &RrOutcome,
    ) -> Option<FetchDecision> {
        if !run_state.net_up {
            return None;
        }
        // No type triggers the policy: skip building the per-project
        // eligibility list (`decide` would return None anyway).
        if !fetch::would_fetch(self.cfg.fetch_policy, rr, &self.hw, &self.prefs, run_state.can_gpu)
        {
            return None;
        }
        let projects: Vec<FetchProject> = self
            .projects
            .iter()
            .map(|p| FetchProject {
                id: p.id,
                share: p.share,
                supplies: p.supplies,
                backoff_until: p.backoff.until().max(p.comm_retry.until).max(p.next_rpc_allowed),
            })
            .collect();
        fetch::decide(
            self.cfg.fetch_policy,
            now,
            rr,
            &self.hw,
            &self.prefs,
            &self.accounting,
            &projects,
            run_state.can_gpu,
        )
    }

    /// Record the result of an RPC: jobs received (or not) and the
    /// server-imposed delay.
    pub fn record_reply(
        &mut self,
        now: SimTime,
        project: ProjectId,
        jobs: Vec<JobSpec>,
        delay: SimDuration,
    ) {
        self.rpcs_issued += 1;
        let njobs = jobs.len();
        let rejected = self.add_jobs(jobs);
        let accepted_any = rejected.len() < njobs;
        if let Some(p) = self.projects.iter_mut().find(|p| p.id == project) {
            p.next_rpc_allowed = now + delay;
            // Any reply at all means communication worked.
            p.comm_retry.succeed();
            // An empty reply, or a reply whose every job was infeasible,
            // backs the project off — otherwise a project supplying only
            // unrunnable jobs would monopolize fetch forever.
            if accepted_any {
                p.backoff.succeed();
            } else {
                p.backoff.fail(now);
            }
        }
    }

    /// Record an RPC that failed to reach the server (scheduled downtime:
    /// escalates the project's ordinary backoff).
    pub fn record_rpc_failure(&mut self, now: SimTime, project: ProjectId) {
        self.rpcs_issued += 1;
        if let Some(p) = self.projects.iter_mut().find(|p| p.id == project) {
            p.backoff.fail(now);
        }
    }

    /// Record a *transient* communication failure (injected fault): the RPC
    /// was lost in transit, so it escalates the project's comm backoff
    /// under [`Client::set_rpc_retry_policy`]'s policy rather than the
    /// scheduled-downtime backoff. `jitter_u` is a uniform draw in
    /// `[0, 1)` for jittered policies (ignored when jitter is zero).
    pub fn record_transient_rpc_failure(
        &mut self,
        now: SimTime,
        project: ProjectId,
        jitter_u: f64,
    ) {
        self.rpcs_issued += 1;
        let policy = self.rpc_retry_policy;
        if let Some(p) = self.projects.iter_mut().find(|p| p.id == project) {
            // Scheduler RPCs are never abandoned: a GiveUp verdict still
            // leaves the backoff in place for the next attempt.
            let _ = p.comm_retry.fail(now, &policy, jitter_u);
        }
    }

    /// Host crash at `now`: every task loses all progress since its last
    /// checkpoint (eager rollback — the in-memory images are gone) and
    /// every in-flight transfer restarts from byte zero with a fresh fault
    /// plan. Backoff and accounting state survive (they model on-disk
    /// client state).
    pub fn crash(&mut self, _now: SimTime) -> CrashOutcome {
        let mut out = CrashOutcome::default();
        for task in &mut self.tasks {
            if task.is_runnable() {
                let lost = task.crash();
                if lost > 0.0 {
                    out.lost.push((task.spec.id, lost));
                }
            }
        }
        let dropped_dl = self.transfers.downloads.restart_all();
        let dropped_ul = self.transfers.uploads.restart_all();
        out.restarted_transfers = dropped_dl.len() + dropped_ul.len();
        for (job, bytes) in dropped_dl {
            self.enqueue_transfer(job, bytes, XferDir::Download);
        }
        for (job, bytes) in dropped_ul {
            self.enqueue_transfer(job, bytes, XferDir::Upload);
        }
        if !out.lost.is_empty() {
            self.state_gen += 1;
            // A crash can roll many tasks back at once across the whole
            // queue; treat it as structural rather than bounding the drift.
            self.rr_dirty.mark_global();
        }
        out
    }

    /// Capture the client's complete mutable state (checkpointing).
    pub fn snapshot(&self) -> ClientSnapshot {
        ClientSnapshot {
            projects: self
                .projects
                .iter()
                .map(|p| ProjectClientSnapshot {
                    id: p.id,
                    backoff: p.backoff.retry_state(),
                    comm_retry: p.comm_retry,
                    next_rpc_allowed: p.next_rpc_allowed,
                })
                .collect(),
            tasks: self.tasks.iter().map(Task::snapshot).collect(),
            finished: self.finished.iter().map(Task::snapshot).collect(),
            accounting: self.accounting.snapshot(),
            downloads: self.transfers.downloads.snapshot(),
            uploads: self.transfers.uploads.snapshot(),
            last_advance: self.last_advance,
            rpcs_issued: self.rpcs_issued,
            xfer_faults_rng: self.xfer_faults.as_ref().map(|m| m.rng().clone()),
            xfer_retries: self
                .xfer_retries
                .iter()
                .map(|r| XferRetrySnapshot {
                    job: r.job,
                    upload: r.dir == XferDir::Upload,
                    bytes: r.bytes,
                    state: r.state,
                })
                .collect(),
            state_gen: self.state_gen,
            rr_cache: self.rr_cache.clone(),
            rr_key: self.rr_key,
            rr_stats: self.rr_stats,
            rr_frozen_until: self.rr_frozen_until,
            rr_dirty: self.rr_dirty.clone(),
        }
    }

    /// Overwrite the client's mutable state from a capture (checkpoint
    /// restore). The client must have been constructed from the same
    /// scenario through the normal path first (same projects, config and
    /// fault models); scenario constants are not restored.
    pub fn restore_snapshot(&mut self, snap: &ClientSnapshot) {
        for ps in &snap.projects {
            if let Some(p) = self.projects.iter_mut().find(|p| p.id == ps.id) {
                p.backoff = Backoff::from_state(ps.backoff);
                p.comm_retry = ps.comm_retry;
                p.next_rpc_allowed = ps.next_rpc_allowed;
            }
        }
        self.tasks.clear();
        self.tasks.extend(snap.tasks.iter().cloned().map(Task::from_snapshot));
        self.finished.clear();
        self.finished.extend(snap.finished.iter().cloned().map(Task::from_snapshot));
        self.accounting.restore_snapshot(&snap.accounting);
        self.transfers.downloads.restore(&snap.downloads);
        self.transfers.uploads.restore(&snap.uploads);
        self.last_advance = snap.last_advance;
        self.rpcs_issued = snap.rpcs_issued;
        if let (Some(m), Some(rng)) = (self.xfer_faults.as_mut(), snap.xfer_faults_rng.as_ref()) {
            m.restore_rng(rng.clone());
        }
        self.xfer_retries.clear();
        self.xfer_retries.extend(snap.xfer_retries.iter().map(|r| XferRetry {
            job: r.job,
            dir: if r.upload { XferDir::Upload } else { XferDir::Download },
            bytes: r.bytes,
            state: r.state,
        }));
        self.state_gen = snap.state_gen;
        self.rr_cache = snap.rr_cache.clone();
        self.rr_key = snap.rr_key;
        self.rr_stats = snap.rr_stats;
        self.rr_frozen_until = snap.rr_frozen_until;
        self.rr_dirty = snap.rr_dirty.clone();
    }

    /// Peak FLOPS this job consumes while running (for converting lost
    /// execution seconds into wasted FLOPS).
    pub fn peak_flops_of(&self, id: JobId) -> f64 {
        self.task(id).map_or(0.0, |t| {
            let u = t.spec.usage;
            let mut f = u.avg_cpus * self.hw.flops_per_inst(ProcType::Cpu);
            if let Some((ty, n)) = u.coproc {
                f += n * self.hw.flops_per_inst(ty);
            }
            f
        })
    }

    /// Remove a reported task from the live set (kept in `finished` for
    /// statistics).
    pub fn retire(&mut self, id: JobId) -> Option<&Task> {
        let idx = self.tasks.iter().position(|t| t.spec.id == id)?;
        let task = self.tasks.swap_remove(idx);
        self.finished.push(task);
        self.finished.last()
    }

    /// The earliest future instant at which something happens without
    /// outside intervention: a running task completes or a transfer
    /// finishes.
    pub fn next_event_after(&self, now: SimTime) -> Option<SimTime> {
        let mut next: Option<SimTime> = None;
        for task in &self.tasks {
            if task.is_running() {
                let eta = now + task.remaining();
                next = Some(next.map_or(eta, |n| n.min(eta)));
            }
        }
        if let Some(t) = self.transfers.next_event_after(now) {
            next = Some(next.map_or(t, |n| n.min(t)));
        }
        // Pending transfer retries wake the loop when their backoff ends.
        for r in &self.xfer_retries {
            if r.state.until > now {
                next = Some(next.map_or(r.state.until, |n| n.min(r.state.until)));
            }
        }
        next
    }

    /// Earliest time a currently-blocked fetch could unblock (backoffs /
    /// server delays), used by the emulator to schedule retries.
    pub fn next_fetch_unblock(&self, now: SimTime) -> Option<SimTime> {
        self.next_fetch_unblock_detail(now).map(|(_, t)| t)
    }

    /// Like [`Client::next_fetch_unblock`], but also naming the project
    /// that unblocks first (ties broken by project order). Feeds the
    /// `FetchDeferred` trace event.
    pub fn next_fetch_unblock_detail(&self, now: SimTime) -> Option<(ProjectId, SimTime)> {
        self.projects
            .iter()
            .map(|p| (p.id, p.backoff.until().max(p.comm_retry.until).max(p.next_rpc_allowed)))
            .filter(|&(_, t)| t > now)
            .min_by(|a, b| a.1.cmp(&b.1))
    }

    /// Instances of each type currently in use (for metrics/timeline).
    pub fn instances_in_use(&self) -> ProcMap<f64> {
        let mut used = ProcMap::zero();
        for task in &self.tasks {
            if task.is_running() {
                used[ProcType::Cpu] += task.spec.usage.avg_cpus;
                if let Some((t, n)) = task.spec.usage.coproc {
                    used[t] += n;
                }
            }
        }
        used
    }

    /// Peak FLOPS in use per project right now (for metrics). GPU jobs'
    /// CPU feeder fractions may overcommit the CPU (as in the real
    /// client); for accounting purposes the per-type usage is scaled back
    /// so delivered FLOPS never exceed the hardware's capacity.
    pub fn flops_in_use_by_project(&self) -> Vec<(ProjectId, f64)> {
        let mut by_project = Vec::new();
        self.flops_in_use_by_project_into(&mut by_project);
        by_project
    }

    /// As [`Self::flops_in_use_by_project`], refilling a caller-owned
    /// buffer (the emulator calls this once per event).
    pub fn flops_in_use_by_project_into(&self, by_project: &mut Vec<(ProjectId, f64)>) {
        by_project.clear();
        let used = self.instances_in_use();
        let scale = ProcMap::from_fn(|t| {
            let n = self.hw.ninstances(t) as f64;
            if used[t] > n && used[t] > 0.0 {
                n / used[t]
            } else {
                1.0
            }
        });
        for task in &self.tasks {
            if task.is_running() {
                let u = task.spec.usage;
                let mut f =
                    u.avg_cpus * scale[ProcType::Cpu] * self.hw.flops_per_inst(ProcType::Cpu);
                if let Some((t, n)) = u.coproc {
                    f += n * scale[t] * self.hw.flops_per_inst(t);
                }
                match by_project.iter_mut().find(|(p, _)| *p == task.spec.project) {
                    Some((_, acc)) => *acc += f,
                    None => by_project.push((task.spec.project, f)),
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bce_types::{AppId, ResourceUsage};

    fn run_state() -> HostRunState {
        HostRunState { can_compute: true, can_gpu: true, net_up: true, user_active: false }
    }

    fn spec(id: u64, project: u32, dur: f64, latency: f64) -> JobSpec {
        JobSpec {
            id: JobId(id),
            project: ProjectId(project),
            app: AppId(0),
            usage: ResourceUsage::one_cpu(),
            duration: SimDuration::from_secs(dur),
            duration_est: SimDuration::from_secs(dur),
            latency_bound: SimDuration::from_secs(latency),
            checkpoint_period: Some(SimDuration::from_secs(60.0)),
            working_set_bytes: 1e8,
            input_bytes: 0.0,
            output_bytes: 0.0,
            received: SimTime::ZERO,
        }
    }

    fn client() -> Client {
        Client::new(
            Hardware::cpu_only(1, 1e9),
            Preferences::default(),
            vec![
                Client::project(0, "alpha", 1.0, &[ProcType::Cpu]),
                Client::project(1, "beta", 1.0, &[ProcType::Cpu]),
            ],
            ClientConfig {
                sched_policy: JobSchedPolicy::LOCAL,
                fetch_policy: FetchPolicy::Hysteresis,
                ..Default::default()
            },
        )
    }

    #[test]
    fn lifecycle_run_to_completion() {
        let mut c = client();
        c.add_jobs(vec![spec(1, 0, 100.0, 1000.0)]);
        let rs = run_state();
        let r = c.reschedule(SimTime::ZERO, rs, 1.0);
        assert_eq!(r.started, vec![JobId(1)]);
        let next = c.next_event_after(SimTime::ZERO).unwrap();
        assert_eq!(next, SimTime::from_secs(100.0));
        let ev = c.advance(next, rs);
        assert_eq!(ev.computed, vec![JobId(1)]);
        assert_eq!(ev.uploaded, vec![JobId(1)]); // no output file: instant
        assert!(c.task(JobId(1)).unwrap().met_deadline());
        c.retire(JobId(1));
        assert!(c.tasks().is_empty());
        assert_eq!(c.finished().len(), 1);
    }

    #[test]
    fn reschedule_preempts_for_endangered() {
        let mut c = client();
        c.add_jobs(vec![spec(1, 0, 1000.0, 1e6)]);
        let rs = run_state();
        c.reschedule(SimTime::ZERO, rs, 1.0);
        // Run 120 s so the running task passes a checkpoint.
        c.advance(SimTime::from_secs(120.0), rs);
        // A tight-deadline job arrives from the other project.
        c.add_jobs(vec![spec(2, 1, 500.0, 600.0)]);
        let r = c.reschedule(SimTime::from_secs(120.0), rs, 1.0);
        assert!(c.rr_snapshot().is_endangered(JobId(2)));
        assert_eq!(r.started, vec![JobId(2)]);
        assert_eq!(r.preempted, vec![JobId(1)]);
    }

    #[test]
    fn fetch_blocked_without_network() {
        let c = client();
        let rr = c.rr_simulate(SimTime::ZERO, run_state(), 1.0);
        let mut rs = run_state();
        rs.net_up = false;
        assert!(c.fetch_decision(SimTime::ZERO, rs, &rr).is_none());
    }

    #[test]
    fn fetch_on_empty_queue() {
        let c = client();
        let rs = run_state();
        let rr = c.rr_simulate(SimTime::ZERO, rs, 1.0);
        let d = c.fetch_decision(SimTime::ZERO, rs, &rr).expect("empty queue must fetch");
        // Entire shortfall = max_queue × 1 instance.
        let expected = c.prefs.work_buf_max().secs();
        assert!((d.request.secs[ProcType::Cpu] - expected).abs() < 1.0);
    }

    #[test]
    fn reply_backoff_and_delay() {
        let mut c = client();
        c.record_reply(SimTime::ZERO, ProjectId(0), vec![], SimDuration::from_secs(60.0));
        assert_eq!(c.rpcs_issued(), 1);
        // Empty reply → backoff; next fetch can't pick P0 immediately.
        let rr = c.rr_simulate(SimTime::ZERO, run_state(), 1.0);
        let d = c.fetch_decision(SimTime::from_secs(1.0), run_state(), &rr).unwrap();
        assert_eq!(d.project, ProjectId(1));
        // Unblock time reported.
        assert!(c.next_fetch_unblock(SimTime::from_secs(1.0)).is_some());
    }

    #[test]
    fn usage_accumulates_in_accounting() {
        let mut c = client();
        c.add_jobs(vec![spec(1, 0, 5000.0, 1e6), spec(2, 1, 5000.0, 1e6)]);
        let rs = run_state();
        c.reschedule(SimTime::ZERO, rs, 1.0);
        c.advance(SimTime::from_secs(1000.0), rs);
        // One CPU, both runnable: whoever ran owes debt to the other.
        let d0 = c.accounting().debt_of(ProjectId(0), ProcType::Cpu);
        let d1 = c.accounting().debt_of(ProjectId(1), ProcType::Cpu);
        assert!((d0 + d1).abs() < 1e-6);
        assert!(d0.abs() > 100.0, "imbalance should accrue, d0={d0}");
    }

    #[test]
    fn download_gates_execution() {
        let mut c = Client::new(
            Hardware::cpu_only(1, 1e9),
            Preferences::default(),
            vec![Client::project(0, "alpha", 1.0, &[ProcType::Cpu])],
            ClientConfig { network: Some(NetworkModel::symmetric(1000.0)), ..Default::default() },
        );
        let mut s = spec(1, 0, 100.0, 1e6);
        s.input_bytes = 2000.0; // 2 s download at 1000 B/s
        c.add_jobs(vec![s]);
        let rs = run_state();
        let r = c.reschedule(SimTime::ZERO, rs, 1.0);
        assert!(r.started.is_empty(), "not downloaded yet");
        let ev = c.advance(SimTime::from_secs(2.0), rs);
        assert_eq!(ev.ready, vec![JobId(1)]);
        let r = c.reschedule(SimTime::from_secs(2.0), rs, 1.0);
        assert_eq!(r.started, vec![JobId(1)]);
    }

    #[test]
    fn output_upload_delays_reportability() {
        let mut c = Client::new(
            Hardware::cpu_only(1, 1e9),
            Preferences::default(),
            vec![Client::project(0, "alpha", 1.0, &[ProcType::Cpu])],
            ClientConfig { network: Some(NetworkModel::symmetric(1000.0)), ..Default::default() },
        );
        let mut s = spec(1, 0, 10.0, 1e6);
        s.output_bytes = 5000.0;
        c.add_jobs(vec![s]);
        let rs = run_state();
        c.reschedule(SimTime::ZERO, rs, 1.0);
        let ev = c.advance(SimTime::from_secs(10.0), rs);
        assert_eq!(ev.computed, vec![JobId(1)]);
        assert!(ev.uploaded.is_empty());
        // Upload takes 5 s.
        let next = c.next_event_after(SimTime::from_secs(10.0)).unwrap();
        assert_eq!(next, SimTime::from_secs(15.0));
        let ev = c.advance(next, rs);
        assert_eq!(ev.uploaded, vec![JobId(1)]);
    }

    #[test]
    fn flapping_server_gaps_double_and_cap_at_max() {
        // Regression (fault-injection PR): a server that is down at every
        // retry must escalate the per-project backoff — doubling gaps from
        // Backoff::MIN up to the Backoff::MAX cap — and a later successful
        // reply must reset the ladder to the bottom.
        use crate::fetch::Backoff;
        let mut c = client();
        let p = ProjectId(0);
        let mut now = SimTime::ZERO;
        let mut expected = Backoff::MIN.secs();
        for attempt in 0..12 {
            c.record_rpc_failure(now, p);
            let until = c.projects()[0].backoff_until();
            let gap = (until - now).secs();
            assert_eq!(
                gap.to_bits(),
                expected.to_bits(),
                "attempt {attempt}: gap {gap} != expected {expected}"
            );
            // Retry the instant the backoff expires; the server is still down.
            now = until;
            expected = (expected * 2.0).min(Backoff::MAX.secs());
        }
        assert_eq!(expected, Backoff::MAX.secs(), "ladder must have reached the cap");
        // The server comes back and hands over a job: full reset.
        c.record_reply(now, p, vec![spec(50, 0, 100.0, 1e6)], SimDuration::ZERO);
        assert_eq!(c.projects()[0].backoff_until(), SimTime::ZERO);
        c.record_rpc_failure(now, p);
        let gap = (c.projects()[0].backoff_until() - now).secs();
        assert_eq!(gap.to_bits(), Backoff::MIN.secs().to_bits(), "reset ladder restarts at MIN");
    }

    #[test]
    fn transient_rpc_failure_backs_off_separately() {
        let mut c = client();
        c.record_transient_rpc_failure(SimTime::ZERO, ProjectId(0), 0.0);
        assert_eq!(c.rpcs_issued(), 1);
        assert_eq!(c.projects()[0].comm_failures(), 1);
        // Comm backoff gates the fetch decision away from P0.
        let rr = c.rr_simulate(SimTime::ZERO, run_state(), 1.0);
        let d = c.fetch_decision(SimTime::from_secs(1.0), run_state(), &rr).unwrap();
        assert_eq!(d.project, ProjectId(1));
        // A successful reply clears the comm backoff (but the empty reply
        // sets the ordinary work-fetch backoff — that path is separate).
        c.record_reply(SimTime::from_secs(61.0), ProjectId(0), vec![], SimDuration::ZERO);
        assert_eq!(c.projects()[0].comm_failures(), 0);
    }

    #[test]
    fn transfer_failures_retry_then_error_job() {
        use bce_faults::RetryPolicy;
        let mut c = Client::new(
            Hardware::cpu_only(1, 1e9),
            Preferences::default(),
            vec![Client::project(0, "alpha", 1.0, &[ProcType::Cpu])],
            ClientConfig { network: Some(NetworkModel::symmetric(1000.0)), ..Default::default() },
        );
        // Every attempt fails; give up after 2 consecutive failures.
        let policy = RetryPolicy { jitter: 0.0, give_up_after: Some(2), ..RetryPolicy::TRANSFER };
        c.set_transfer_faults(TransferFaultModel::new(99, 1.0, policy));
        let mut s = spec(1, 0, 100.0, 1e6);
        s.input_bytes = 2000.0;
        c.add_jobs(vec![s]);
        let rs = run_state();
        // First attempt fails somewhere inside the 2 s window.
        let ev = c.advance(SimTime::from_secs(2.0), rs);
        assert!(ev.errored.is_empty());
        assert!(ev.ready.is_empty());
        // Backoff (60 s, no jitter), retry, second failure => give up.
        let retry_at = c.next_event_after(SimTime::from_secs(2.0)).expect("retry scheduled");
        let ev = c.advance(retry_at, rs); // re-enqueues the attempt
        assert!(ev.errored.is_empty());
        let ev = c.advance(retry_at + SimDuration::from_secs(2.0), rs);
        assert_eq!(ev.errored, vec![JobId(1)]);
        assert!(c.task(JobId(1)).unwrap().is_errored());
    }

    #[test]
    fn crash_discards_progress_and_restarts_transfers() {
        let mut c = Client::new(
            Hardware::cpu_only(1, 1e9),
            Preferences::default(),
            vec![Client::project(0, "alpha", 1.0, &[ProcType::Cpu])],
            ClientConfig { network: Some(NetworkModel::symmetric(1000.0)), ..Default::default() },
        );
        let mut dl = spec(2, 0, 100.0, 1e6);
        dl.input_bytes = 10_000.0; // 10 s download
        c.add_jobs(vec![spec(1, 0, 1000.0, 1e6), dl]);
        let rs = run_state();
        c.reschedule(SimTime::ZERO, rs, 1.0);
        // Job 1 runs 90 s (checkpoint 60 s); job 2 has 1 s of download left.
        c.advance(SimTime::from_secs(9.0), rs);
        let out = c.crash(SimTime::from_secs(9.0));
        assert_eq!(out.restarted_transfers, 1);
        assert!(out.lost.iter().any(|&(id, lost)| id == JobId(1) && (lost - 9.0).abs() < 1e-6));
        // The download restarts from byte zero: full 10 s again.
        assert!(c.transfers_pending_download(JobId(2)));
        let ev = c.advance(SimTime::from_secs(18.0), rs);
        assert!(ev.ready.is_empty(), "restarted download must not finish early");
        let ev = c.advance(SimTime::from_secs(19.0), rs);
        assert_eq!(ev.ready, vec![JobId(2)]);
        // The crashed task resumes from its checkpoint (progress 0 here).
        assert_eq!(c.task(JobId(1)).unwrap().progress(), 0.0);
    }

    #[test]
    fn instances_in_use_tracks_running() {
        let mut c = client();
        c.add_jobs(vec![spec(1, 0, 100.0, 1e6), spec(2, 1, 100.0, 1e6)]);
        c.reschedule(SimTime::ZERO, run_state(), 1.0);
        // One CPU: exactly one running.
        assert!((c.instances_in_use()[ProcType::Cpu] - 1.0).abs() < 1e-9);
        let by_proj = c.flops_in_use_by_project();
        assert_eq!(by_proj.len(), 1);
        assert!((by_proj[0].1 - 1e9).abs() < 1.0);
    }
}

//! Round-robin simulation (§3.2).
//!
//! The client's policies predict the behaviour of the system under
//! weighted round-robin using a *continuous approximation*: rather than
//! modelling individual timeslices, each project's unfinished jobs of a
//! processor type receive a fraction of that type's instances proportional
//! to the project's resource share. The simulation outputs:
//!
//! * which jobs are projected to miss their deadlines
//!   ("deadline-endangered"),
//! * per processor type, how long the type stays saturated — `SAT(T)`,
//! * per processor type, the idle instance-seconds within the work-buffer
//!   window — `SHORTFALL(T)`.

use bce_types::{JobId, ProcMap, ProcType, ProjectId, SimDuration, SimTime};
use std::collections::HashSet;

/// One job as seen by the simulation.
#[derive(Debug, Clone, Copy)]
pub struct RrJob {
    pub id: JobId,
    pub project: ProjectId,
    /// The processor type whose instances bound this job.
    pub proc_type: ProcType,
    /// Instances of `proc_type` the job occupies while running.
    pub instances: f64,
    /// Estimated remaining dedicated-execution seconds.
    pub remaining: SimDuration,
    pub deadline: SimTime,
}

/// Static description of the simulated platform.
#[derive(Debug, Clone)]
pub struct RrPlatform {
    /// The simulation's "now": deadlines are absolute, the simulated
    /// clock is an offset from this instant.
    pub now: SimTime,
    /// Usable instances per type (after preference limits).
    pub ninstances: ProcMap<f64>,
    /// Long-run fraction of time computing is allowed — scales effective
    /// execution rates like the real client's `on_frac` correction.
    pub on_frac: f64,
    /// `(project, share)` pairs; shares are relative weights.
    pub shares: Vec<(ProjectId, f64)>,
}

impl RrPlatform {
    fn share_of(&self, p: ProjectId) -> f64 {
        self.shares.iter().find(|(id, _)| *id == p).map_or(0.0, |(_, s)| *s)
    }
}

/// Simulation outputs (§3.2, Figure 2).
#[derive(Debug, Clone)]
pub struct RrOutcome {
    /// Jobs projected to miss their deadline under WRR.
    pub missed: HashSet<JobId>,
    /// For each type, how long all its instances stay busy from now.
    pub sat: ProcMap<SimDuration>,
    /// For each type, idle instance-seconds within the buffer window.
    pub shortfall: ProcMap<f64>,
    /// Projected completion offset of each job (from now).
    pub finish: Vec<(JobId, SimDuration)>,
    /// Instances of each type busy at the start (the present workload).
    pub busy_now: ProcMap<f64>,
}

impl RrOutcome {
    pub fn is_endangered(&self, id: JobId) -> bool {
        self.missed.contains(&id)
    }
}

/// Run the round-robin simulation over `jobs` on `platform`, evaluating
/// shortfall within `buf_window` (the `max_queue` horizon, §3.4).
///
/// ```
/// use bce_client::{rr_simulate, RrJob, RrPlatform};
/// use bce_types::{JobId, ProcMap, ProcType, ProjectId, SimDuration, SimTime};
///
/// let mut ninstances = ProcMap::zero();
/// ninstances[ProcType::Cpu] = 1.0;
/// let platform = RrPlatform {
///     now: SimTime::ZERO,
///     ninstances,
///     on_frac: 1.0,
///     shares: vec![(ProjectId(0), 1.0), (ProjectId(1), 1.0)],
/// };
/// // Two 1000 s jobs share the CPU: both projected to finish at 2000 s,
/// // so the 1500 s deadline is endangered.
/// let job = |id, project, deadline: f64| RrJob {
///     id: JobId(id), project: ProjectId(project), proc_type: ProcType::Cpu,
///     instances: 1.0, remaining: SimDuration::from_secs(1000.0),
///     deadline: SimTime::from_secs(deadline),
/// };
/// let out = rr_simulate(&platform, &[job(1, 0, 1500.0), job(2, 1, 86_400.0)],
///                       SimDuration::from_hours(1.0));
/// assert!(out.is_endangered(JobId(1)));
/// assert!(!out.is_endangered(JobId(2)));
/// ```
pub fn simulate(platform: &RrPlatform, jobs: &[RrJob], buf_window: SimDuration) -> RrOutcome {
    // Mutable remaining work; simulation proceeds between job-completion
    // events with piecewise-constant rates.
    let mut remaining: Vec<f64> = jobs.iter().map(|j| j.remaining.secs().max(0.0)).collect();
    let mut done: Vec<bool> = remaining.iter().map(|&r| r <= 0.0).collect();
    let mut missed = HashSet::new();
    let mut finish: Vec<(JobId, SimDuration)> = Vec::with_capacity(jobs.len());
    let mut sat = ProcMap::from_fn(|_| SimDuration::ZERO);
    let mut sat_open = ProcMap::from_fn(|t| platform.ninstances[t] > 0.0);
    let mut shortfall = ProcMap::zero();
    let mut busy_now = ProcMap::zero();

    let on_frac = platform.on_frac.clamp(1e-6, 1.0);
    let horizon = buf_window.secs().max(0.0);
    let mut t = 0.0f64; // offset from now
    let mut first_step = true;

    loop {
        // Per-type, per-project allocation under weighted round robin.
        // rate[i] = fraction of dedicated speed job i runs at.
        let mut rates: Vec<f64> = vec![0.0; jobs.len()];
        let mut busy = ProcMap::zero();

        for pt in ProcType::ALL {
            let ninst = platform.ninstances[pt];
            if ninst <= 0.0 {
                continue;
            }
            // Projects with unfinished jobs of this type, with their total
            // instance demand.
            let mut proj: Vec<(ProjectId, f64, f64)> = Vec::new(); // (id, share, demand)
            for (i, j) in jobs.iter().enumerate() {
                if done[i] || j.proc_type != pt {
                    continue;
                }
                let demand = j.instances.max(1e-9);
                match proj.iter_mut().find(|(id, _, _)| *id == j.project) {
                    Some(entry) => entry.2 += demand,
                    None => proj.push((j.project, platform.share_of(j.project), demand)),
                }
            }
            if proj.is_empty() {
                continue;
            }
            // Share-weighted instance allocation with redistribution of
            // surplus from projects whose demand is below their share.
            let mut alloc: Vec<f64> = vec![0.0; proj.len()];
            let mut capacity = ninst;
            let mut active: Vec<usize> = (0..proj.len()).collect();
            for _ in 0..proj.len() + 1 {
                let wsum: f64 = active.iter().map(|&k| proj[k].1).sum();
                if wsum <= 0.0 || capacity <= 1e-12 || active.is_empty() {
                    break;
                }
                let mut next_active = Vec::new();
                let mut used = 0.0;
                for &k in &active {
                    let fair = capacity * proj[k].1 / wsum;
                    let need = proj[k].2 - alloc[k];
                    if need <= fair + 1e-12 {
                        alloc[k] += need.max(0.0);
                        used += need.max(0.0);
                    } else {
                        alloc[k] += fair;
                        used += fair;
                        next_active.push(k);
                    }
                }
                capacity -= used;
                if next_active.len() == active.len() {
                    break; // nobody saturated; no surplus to redistribute
                }
                active = next_active;
            }
            // Distribute each project's allocation over its jobs
            // (proportional to per-job demand).
            for (k, &(pid, _, demand)) in proj.iter().enumerate() {
                let frac = (alloc[k] / demand).min(1.0);
                for (i, j) in jobs.iter().enumerate() {
                    if !done[i] && j.proc_type == pt && j.project == pid {
                        rates[i] = frac * on_frac;
                        busy[pt] += frac * j.instances;
                    }
                }
            }
        }

        if first_step {
            busy_now = busy;
            first_step = false;
        }

        // Next completion event.
        let mut dt = f64::INFINITY;
        for i in 0..jobs.len() {
            if !done[i] && rates[i] > 0.0 {
                dt = dt.min(remaining[i] / rates[i]);
            }
        }

        // Accrue saturation and shortfall over [t, t+dt).
        let seg_end = if dt.is_finite() { t + dt } else { t };
        for pt in ProcType::ALL {
            let ninst = platform.ninstances[pt];
            if ninst <= 0.0 {
                continue;
            }
            if sat_open[pt] && busy[pt] < ninst - 1e-9 {
                sat[pt] = SimDuration::from_secs(t);
                sat_open[pt] = false;
            }
            // Idle instance-seconds within the buffer window.
            let w_end = seg_end.min(horizon);
            if w_end > t {
                shortfall[pt] += (ninst - busy[pt]).max(0.0) * (w_end - t);
            }
        }

        if !dt.is_finite() {
            // Nothing runnable: remaining window is pure shortfall.
            for pt in ProcType::ALL {
                let ninst = platform.ninstances[pt];
                if ninst > 0.0 {
                    if sat_open[pt] {
                        sat[pt] = SimDuration::from_secs(t);
                        sat_open[pt] = false;
                    }
                    if horizon > t {
                        shortfall[pt] += ninst * (horizon - t);
                    }
                }
            }
            break;
        }

        // Advance to the event.
        t += dt;
        for i in 0..jobs.len() {
            if done[i] || rates[i] <= 0.0 {
                continue;
            }
            remaining[i] -= rates[i] * dt;
            if remaining[i] <= 1e-6 {
                done[i] = true;
                let fin = SimDuration::from_secs(t);
                finish.push((jobs[i].id, fin));
                if jobs[i].deadline < platform.now + fin {
                    missed.insert(jobs[i].id);
                }
            }
        }
        if done.iter().all(|&d| d) {
            for pt in ProcType::ALL {
                let ninst = platform.ninstances[pt];
                if ninst > 0.0 {
                    if sat_open[pt] {
                        sat[pt] = SimDuration::from_secs(t);
                        sat_open[pt] = false;
                    }
                    if horizon > t {
                        shortfall[pt] += ninst * (horizon - t);
                    }
                }
            }
            break;
        }
        if t > 3650.0 * 86_400.0 {
            // Safety valve: pathological workloads (e.g. zero rates from
            // extreme preference limits) must not hang the emulator.
            break;
        }
    }

    RrOutcome { missed, sat, shortfall, finish, busy_now }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: f64) -> SimTime {
        SimTime::from_secs(s)
    }
    fn d(s: f64) -> SimDuration {
        SimDuration::from_secs(s)
    }

    fn cpu_platform(ncpus: f64, shares: &[(u32, f64)]) -> RrPlatform {
        let mut ninstances = ProcMap::zero();
        ninstances[ProcType::Cpu] = ncpus;
        RrPlatform {
            now: SimTime::ZERO,
            ninstances,
            on_frac: 1.0,
            shares: shares.iter().map(|&(p, s)| (ProjectId(p), s)).collect(),
        }
    }

    fn job(id: u64, project: u32, remaining: f64, deadline: f64) -> RrJob {
        RrJob {
            id: JobId(id),
            project: ProjectId(project),
            proc_type: ProcType::Cpu,
            instances: 1.0,
            remaining: d(remaining),
            deadline: t(deadline),
        }
    }

    #[test]
    fn single_job_finishes_at_remaining() {
        let p = cpu_platform(1.0, &[(0, 1.0)]);
        let out = simulate(&p, &[job(1, 0, 100.0, 1000.0)], d(0.0));
        assert_eq!(out.finish.len(), 1);
        assert!((out.finish[0].1.secs() - 100.0).abs() < 1e-6);
        assert!(out.missed.is_empty());
        assert_eq!(out.sat[ProcType::Cpu], d(100.0));
        assert_eq!(out.busy_now[ProcType::Cpu], 1.0);
    }

    #[test]
    fn equal_shares_halve_rates() {
        // Two projects, one job each, 1 CPU: both run at rate 1/2; the
        // equal-length jobs finish together at 2x their length.
        let p = cpu_platform(1.0, &[(0, 1.0), (1, 1.0)]);
        let jobs = [job(1, 0, 100.0, 150.0), job(2, 1, 100.0, 250.0)];
        let out = simulate(&p, &jobs, d(0.0));
        let f1 = out.finish.iter().find(|(id, _)| *id == JobId(1)).unwrap().1;
        let f2 = out.finish.iter().find(|(id, _)| *id == JobId(2)).unwrap().1;
        assert!((f1.secs() - 200.0).abs() < 1e-6);
        assert!((f2.secs() - 200.0).abs() < 1e-6);
        // Job 1's deadline (150) is before its projected finish (200).
        assert!(out.is_endangered(JobId(1)));
        assert!(!out.is_endangered(JobId(2)));
    }

    #[test]
    fn share_weighting_speeds_up_heavy_project() {
        let p = cpu_platform(1.0, &[(0, 3.0), (1, 1.0)]);
        let jobs = [job(1, 0, 75.0, 1e9), job(2, 1, 100.0, 1e9)];
        let out = simulate(&p, &jobs, d(0.0));
        let f1 = out.finish.iter().find(|(id, _)| *id == JobId(1)).unwrap().1;
        // Project 0 runs at rate 3/4 until its job finishes at t=100.
        assert!((f1.secs() - 100.0).abs() < 1e-6);
    }

    #[test]
    fn surplus_share_redistributes() {
        // 4 CPUs, two projects equal shares, but project 0 has only one
        // job (demand 1 < fair 2): project 1's two jobs get the surplus.
        let p = cpu_platform(4.0, &[(0, 1.0), (1, 1.0)]);
        let jobs = [job(1, 0, 100.0, 1e9), job(2, 1, 100.0, 1e9), job(3, 1, 100.0, 1e9)];
        let out = simulate(&p, &jobs, d(0.0));
        for (_, f) in &out.finish {
            assert!((f.secs() - 100.0).abs() < 1e-6, "all dedicated: {f}");
        }
        // Only 3 instances busy on a 4-CPU host.
        assert!((out.busy_now[ProcType::Cpu] - 3.0).abs() < 1e-9);
        assert_eq!(out.sat[ProcType::Cpu], SimDuration::ZERO);
    }

    #[test]
    fn shortfall_measures_idle_window() {
        // One job of 100 s on 1 CPU, window 300 s: idle 200 instance-sec.
        let p = cpu_platform(1.0, &[(0, 1.0)]);
        let out = simulate(&p, &[job(1, 0, 100.0, 1e9)], d(300.0));
        assert!((out.shortfall[ProcType::Cpu] - 200.0).abs() < 1e-6);
    }

    #[test]
    fn empty_queue_is_all_shortfall() {
        let p = cpu_platform(2.0, &[(0, 1.0)]);
        let out = simulate(&p, &[], d(100.0));
        assert!((out.shortfall[ProcType::Cpu] - 200.0).abs() < 1e-6);
        assert_eq!(out.sat[ProcType::Cpu], SimDuration::ZERO);
        assert_eq!(out.busy_now[ProcType::Cpu], 0.0);
    }

    #[test]
    fn gpu_and_cpu_independent() {
        let mut ninst = ProcMap::zero();
        ninst[ProcType::Cpu] = 1.0;
        ninst[ProcType::NvidiaGpu] = 1.0;
        let p = RrPlatform {
            now: SimTime::ZERO,
            ninstances: ninst,
            on_frac: 1.0,
            shares: vec![(ProjectId(0), 1.0)],
        };
        let gpu_job = RrJob {
            id: JobId(2),
            project: ProjectId(0),
            proc_type: ProcType::NvidiaGpu,
            instances: 1.0,
            remaining: d(50.0),
            deadline: t(1e9),
        };
        let out = simulate(&p, &[job(1, 0, 100.0, 1e9), gpu_job], d(200.0));
        assert_eq!(out.sat[ProcType::Cpu], d(100.0));
        assert_eq!(out.sat[ProcType::NvidiaGpu], d(50.0));
        // GPU idle 150 s of the 200 s window, CPU idle 100 s.
        assert!((out.shortfall[ProcType::NvidiaGpu] - 150.0).abs() < 1e-6);
        assert!((out.shortfall[ProcType::Cpu] - 100.0).abs() < 1e-6);
    }

    #[test]
    fn on_frac_slows_execution() {
        let mut p = cpu_platform(1.0, &[(0, 1.0)]);
        p.on_frac = 0.5;
        let out = simulate(&p, &[job(1, 0, 100.0, 150.0)], d(0.0));
        let f = out.finish[0].1;
        assert!((f.secs() - 200.0).abs() < 1e-6);
        assert!(out.is_endangered(JobId(1)));
    }

    #[test]
    fn fig3_shape_queued_jobs_endangered_under_wrr() {
        // Scenario-1-like: 1 CPU, equal shares, both projects hold a
        // 1000 s job with latency bound 1500. Under WRR both finish at
        // 2000 > 1500: both endangered.
        let p = cpu_platform(1.0, &[(0, 1.0), (1, 1.0)]);
        let jobs = [job(1, 0, 1000.0, 1500.0), job(2, 1, 1000.0, 1500.0)];
        let out = simulate(&p, &jobs, d(0.0));
        assert!(out.is_endangered(JobId(1)));
        assert!(out.is_endangered(JobId(2)));
    }

    #[test]
    fn zero_instance_types_ignored() {
        let p = cpu_platform(0.0, &[(0, 1.0)]);
        let out = simulate(&p, &[job(1, 0, 100.0, 1e9)], d(100.0));
        // No CPU: job never finishes, no saturation tracked.
        assert!(out.finish.is_empty());
        assert_eq!(out.shortfall[ProcType::Cpu], 0.0);
    }

    #[test]
    fn multi_cpu_job_demand() {
        // A 2-CPU job on a 4-CPU host occupies 2 instances.
        let p = cpu_platform(4.0, &[(0, 1.0)]);
        let wide = RrJob {
            id: JobId(1),
            project: ProjectId(0),
            proc_type: ProcType::Cpu,
            instances: 2.0,
            remaining: d(100.0),
            deadline: t(1e9),
        };
        let out = simulate(&p, &[wide], d(100.0));
        assert!((out.busy_now[ProcType::Cpu] - 2.0).abs() < 1e-9);
        assert!((out.shortfall[ProcType::Cpu] - 2.0 * 100.0).abs() < 1e-6);
    }
}

//! Round-robin simulation (§3.2).
//!
//! The client's policies predict the behaviour of the system under
//! weighted round-robin using a *continuous approximation*: rather than
//! modelling individual timeslices, each project's unfinished jobs of a
//! processor type receive a fraction of that type's instances proportional
//! to the project's resource share. The simulation outputs:
//!
//! * which jobs are projected to miss their deadlines
//!   ("deadline-endangered"),
//! * per processor type, how long the type stays saturated — `SAT(T)`,
//! * per processor type, the idle instance-seconds within the work-buffer
//!   window — `SHORTFALL(T)`.
//!
//! # Hot path
//!
//! The simulation runs at every scheduling decision point, so there are two
//! entry points: [`simulate`], which allocates its working state per call,
//! and [`simulate_into`], which reuses a caller-owned [`RrScratch`] and an
//! existing [`RrOutcome`] so that steady-state calls perform no heap
//! allocation at all. Both are bit-identical to [`simulate_reference`], the
//! original straightforward implementation kept for differential testing:
//! every floating-point accumulation happens in exactly the same order, so
//! results match down to the last ulp.

use bce_types::{JobId, ProcMap, ProcType, ProjectId, SimDuration, SimTime};
use std::collections::HashSet;

/// One job as seen by the simulation.
#[derive(Debug, Clone, Copy)]
pub struct RrJob {
    pub id: JobId,
    pub project: ProjectId,
    /// The processor type whose instances bound this job.
    pub proc_type: ProcType,
    /// Instances of `proc_type` the job occupies while running.
    pub instances: f64,
    /// Estimated remaining dedicated-execution seconds.
    pub remaining: SimDuration,
    pub deadline: SimTime,
}

/// Static description of the simulated platform.
#[derive(Debug, Clone)]
pub struct RrPlatform {
    /// The simulation's "now": deadlines are absolute, the simulated
    /// clock is an offset from this instant.
    pub now: SimTime,
    /// Usable instances per type (after preference limits).
    pub ninstances: ProcMap<f64>,
    /// Long-run fraction of time computing is allowed — scales effective
    /// execution rates like the real client's `on_frac` correction.
    pub on_frac: f64,
    /// `(project, share)` pairs; shares are relative weights.
    pub shares: Vec<(ProjectId, f64)>,
}

impl RrPlatform {
    fn share_of(&self, p: ProjectId) -> f64 {
        self.shares.iter().find(|(id, _)| *id == p).map_or(0.0, |(_, s)| *s)
    }
}

/// Simulation outputs (§3.2, Figure 2).
#[derive(Debug, Clone, PartialEq)]
pub struct RrOutcome {
    /// Jobs projected to miss their deadline under WRR, sorted by id
    /// (binary-searched by [`RrOutcome::is_endangered`]).
    pub missed: Vec<JobId>,
    /// For each type, how long all its instances stay busy from now.
    pub sat: ProcMap<SimDuration>,
    /// For each type, idle instance-seconds within the buffer window.
    pub shortfall: ProcMap<f64>,
    /// Projected completion offset of each job (from now).
    pub finish: Vec<(JobId, SimDuration)>,
    /// Instances of each type busy at the start (the present workload).
    pub busy_now: ProcMap<f64>,
}

impl Default for RrOutcome {
    fn default() -> Self {
        RrOutcome {
            missed: Vec::new(),
            sat: ProcMap::from_fn(|_| SimDuration::ZERO),
            shortfall: ProcMap::zero(),
            finish: Vec::new(),
            busy_now: ProcMap::zero(),
        }
    }
}

impl RrOutcome {
    pub fn is_endangered(&self, id: JobId) -> bool {
        self.missed.binary_search(&id).is_ok()
    }
}

/// A `(proc_type, project)` job group; built once per simulation call.
#[derive(Debug, Clone, Copy)]
struct Group {
    project: ProjectId,
    /// The project's resource share (resolved once, not per step).
    share: f64,
}

/// Reusable workspace for [`simulate_into`]. All vectors retain their
/// capacity across calls, so repeated simulations over similarly-sized
/// workloads perform zero heap allocations.
#[derive(Debug, Default)]
pub struct RrScratch {
    // Per-job state.
    remaining: Vec<f64>,
    done: Vec<bool>,
    rates: Vec<f64>,
    /// Unfinished job indices, ascending. The event loop's per-step scans
    /// (next completion, work advance) walk this instead of every job;
    /// ascending order keeps completion discovery — and therefore the
    /// `finish`/`missed` output order — identical to the full scan.
    alive_idx: Vec<u32>,
    /// Group index of each job.
    job_group: Vec<u32>,
    // Per-group index, built once per call.
    groups: Vec<Group>,
    /// Group ids per processor type, in order of first appearance.
    pt_groups: [Vec<u32>; ProcType::COUNT],
    /// Job indices, counting-sorted by group (original order within each
    /// group).
    group_jobs: Vec<u32>,
    /// Start offset of each group's slice in `group_jobs` (len = groups+1).
    group_start: Vec<u32>,
    /// First possibly-alive offset within each group's slice. Monotonic:
    /// only ever advances past finished jobs.
    group_cursor: Vec<u32>,
    // Per-step state.
    /// Active groups of the current type, ordered by first unfinished job
    /// index — the same order the reference implementation discovers
    /// projects in, which fixes the floating-point summation order.
    order: Vec<u32>,
    /// Instance demand per group in `order` (parallel to `order`).
    demand: Vec<f64>,
    /// Allocated instances per group in `order`.
    alloc: Vec<f64>,
    /// Positions into `order` still competing for instances.
    active: Vec<u32>,
    next_active: Vec<u32>,
}

impl RrScratch {
    pub fn new() -> Self {
        Self::default()
    }

    fn reset(&mut self, njobs: usize) {
        self.remaining.clear();
        self.done.clear();
        self.rates.clear();
        self.rates.resize(njobs, 0.0);
        self.alive_idx.clear();
        self.job_group.clear();
        self.groups.clear();
        for list in &mut self.pt_groups {
            list.clear();
        }
        self.group_jobs.clear();
        self.group_start.clear();
        self.group_cursor.clear();
        self.order.clear();
        self.demand.clear();
        self.alloc.clear();
        self.active.clear();
        self.next_active.clear();
    }
}

/// Run the round-robin simulation over `jobs` on `platform`, evaluating
/// shortfall within `buf_window` (the `max_queue` horizon, §3.4).
///
/// ```
/// use bce_client::{rr_simulate, RrJob, RrPlatform};
/// use bce_types::{JobId, ProcMap, ProcType, ProjectId, SimDuration, SimTime};
///
/// let mut ninstances = ProcMap::zero();
/// ninstances[ProcType::Cpu] = 1.0;
/// let platform = RrPlatform {
///     now: SimTime::ZERO,
///     ninstances,
///     on_frac: 1.0,
///     shares: vec![(ProjectId(0), 1.0), (ProjectId(1), 1.0)],
/// };
/// // Two 1000 s jobs share the CPU: both projected to finish at 2000 s,
/// // so the 1500 s deadline is endangered.
/// let job = |id, project, deadline: f64| RrJob {
///     id: JobId(id), project: ProjectId(project), proc_type: ProcType::Cpu,
///     instances: 1.0, remaining: SimDuration::from_secs(1000.0),
///     deadline: SimTime::from_secs(deadline),
/// };
/// let out = rr_simulate(&platform, &[job(1, 0, 1500.0), job(2, 1, 86_400.0)],
///                       SimDuration::from_hours(1.0));
/// assert!(out.is_endangered(JobId(1)));
/// assert!(!out.is_endangered(JobId(2)));
/// ```
pub fn simulate(platform: &RrPlatform, jobs: &[RrJob], buf_window: SimDuration) -> RrOutcome {
    let mut scratch = RrScratch::new();
    let mut out = RrOutcome::default();
    simulate_into(platform, jobs, buf_window, &mut scratch, &mut out);
    out
}

/// Allocation-free variant of [`simulate`]: reuses `scratch` and writes the
/// result into `out`, clearing any previous contents. In steady state (same
/// workload shape as a previous call) this performs zero heap allocations.
///
/// Bit-identical to [`simulate_reference`]: the job-group index only changes
/// *how* each floating-point sum is located, never the order its terms are
/// added in.
pub fn simulate_into(
    platform: &RrPlatform,
    jobs: &[RrJob],
    buf_window: SimDuration,
    scratch: &mut RrScratch,
    out: &mut RrOutcome,
) {
    let s = scratch;
    s.reset(jobs.len());
    out.missed.clear();
    out.finish.clear();
    out.sat = ProcMap::from_fn(|_| SimDuration::ZERO);
    out.shortfall = ProcMap::zero();
    out.busy_now = ProcMap::zero();

    // Build the (proc_type, project) group index: group ids in order of
    // first appearance, per-type group lists, and jobs counting-sorted by
    // group while preserving original job order within each group.
    let mut alive = 0usize;
    for (i, j) in jobs.iter().enumerate() {
        let r = j.remaining.secs().max(0.0);
        s.remaining.push(r);
        let done = r <= 0.0;
        s.done.push(done);
        if !done {
            alive += 1;
            s.alive_idx.push(i as u32);
        }
        let pt_list = &mut s.pt_groups[j.proc_type.index()];
        let gid = match pt_list.iter().find(|&&g| s.groups[g as usize].project == j.project) {
            Some(&g) => g,
            None => {
                let g = s.groups.len() as u32;
                s.groups.push(Group { project: j.project, share: platform.share_of(j.project) });
                pt_list.push(g);
                g
            }
        };
        s.job_group.push(gid);
    }
    let ngroups = s.groups.len();
    s.group_start.resize(ngroups + 1, 0);
    for &g in &s.job_group {
        s.group_start[g as usize + 1] += 1;
    }
    for g in 0..ngroups {
        s.group_start[g + 1] += s.group_start[g];
    }
    s.group_cursor.resize(ngroups, 0);
    s.group_jobs.resize(jobs.len(), 0);
    // Fill group slices using the cursor vector as a temporary fill pointer,
    // then zero it back for its real role (skipping finished jobs).
    for (i, &g) in s.job_group.iter().enumerate() {
        let slot = s.group_start[g as usize] + s.group_cursor[g as usize];
        s.group_jobs[slot as usize] = i as u32;
        s.group_cursor[g as usize] += 1;
    }
    s.group_cursor.fill(0);

    let on_frac = platform.on_frac.clamp(1e-6, 1.0);
    let horizon = buf_window.secs().max(0.0);
    let mut sat_open = ProcMap::from_fn(|pt| platform.ninstances[pt] > 0.0);
    let mut t = 0.0f64; // offset from now
    let mut first_step = true;

    // Per-type step cache: a type's allocation (and therefore every job
    // rate and the busy total) only changes when one of *its* jobs
    // completes, so between completions the previous step's values are
    // reused verbatim. Reusing a value is trivially bit-identical to
    // recomputing it from unchanged inputs.
    let mut type_dirty = [true; ProcType::COUNT];
    let mut busy = ProcMap::zero();

    loop {
        // Per-type, per-project allocation under weighted round robin.
        // rate[i] = fraction of dedicated speed job i runs at.
        for pt in ProcType::ALL {
            let ninst = platform.ninstances[pt];
            if ninst <= 0.0 {
                continue;
            }
            if !type_dirty[pt.index()] {
                continue;
            }
            type_dirty[pt.index()] = false;
            // Every alive job of this type gets its rate reassigned below
            // (all alive groups enter `order`); finished jobs' stale rates
            // are never read thanks to the `done` guards.
            busy[pt] = 0.0;
            // Groups of this type with unfinished jobs, ordered by first
            // unfinished job index (the discovery order of the reference
            // scan), with their total instance demand summed in job order.
            s.order.clear();
            for gi in 0..s.pt_groups[pt.index()].len() {
                let g = s.pt_groups[pt.index()][gi];
                let (start, end) = (s.group_start[g as usize], s.group_start[g as usize + 1]);
                let mut cur = s.group_cursor[g as usize];
                while start + cur < end && s.done[s.group_jobs[(start + cur) as usize] as usize] {
                    cur += 1;
                }
                s.group_cursor[g as usize] = cur;
                if start + cur < end {
                    s.order.push(g);
                }
            }
            s.order.sort_unstable_by_key(|&g| {
                s.group_jobs[(s.group_start[g as usize] + s.group_cursor[g as usize]) as usize]
            });
            if s.order.is_empty() {
                continue;
            }
            s.demand.clear();
            for &g in &s.order {
                let (start, end) = (s.group_start[g as usize], s.group_start[g as usize + 1]);
                let mut demand = 0.0;
                for &i in &s.group_jobs[(start + s.group_cursor[g as usize]) as usize..end as usize]
                {
                    if !s.done[i as usize] {
                        demand += jobs[i as usize].instances.max(1e-9);
                    }
                }
                s.demand.push(demand);
            }
            // Share-weighted instance allocation with redistribution of
            // surplus from projects whose demand is below their share.
            s.alloc.clear();
            s.alloc.resize(s.order.len(), 0.0);
            let mut capacity = ninst;
            s.active.clear();
            s.active.extend(0..s.order.len() as u32);
            for _ in 0..s.order.len() + 1 {
                let wsum: f64 =
                    s.active.iter().map(|&k| s.groups[s.order[k as usize] as usize].share).sum();
                if wsum <= 0.0 || capacity <= 1e-12 || s.active.is_empty() {
                    break;
                }
                s.next_active.clear();
                let mut used = 0.0;
                for &k in &s.active {
                    let fair = capacity * s.groups[s.order[k as usize] as usize].share / wsum;
                    let need = s.demand[k as usize] - s.alloc[k as usize];
                    if need <= fair + 1e-12 {
                        s.alloc[k as usize] += need.max(0.0);
                        used += need.max(0.0);
                    } else {
                        s.alloc[k as usize] += fair;
                        used += fair;
                        s.next_active.push(k);
                    }
                }
                capacity -= used;
                if s.next_active.len() == s.active.len() {
                    break; // nobody saturated; no surplus to redistribute
                }
                std::mem::swap(&mut s.active, &mut s.next_active);
            }
            // Distribute each group's allocation over its jobs
            // (proportional to per-job demand).
            for k in 0..s.order.len() {
                let g = s.order[k] as usize;
                let frac = (s.alloc[k] / s.demand[k]).min(1.0);
                let (start, end) = (s.group_start[g], s.group_start[g + 1]);
                for &i in &s.group_jobs[(start + s.group_cursor[g]) as usize..end as usize] {
                    let i = i as usize;
                    if !s.done[i] {
                        s.rates[i] = frac * on_frac;
                        busy[pt] += frac * jobs[i].instances;
                    }
                }
            }
        }

        if first_step {
            out.busy_now = busy;
            first_step = false;
        }

        // Next completion event. Only unfinished jobs are scanned; the
        // division sequence is the one the reference performs on the
        // same operands (done jobs contribute nothing to the min).
        let mut dt = f64::INFINITY;
        for &i in &s.alive_idx {
            let i = i as usize;
            if s.rates[i] > 0.0 {
                dt = dt.min(s.remaining[i] / s.rates[i]);
            }
        }

        // Accrue saturation and shortfall over [t, t+dt).
        let seg_end = if dt.is_finite() { t + dt } else { t };
        for pt in ProcType::ALL {
            let ninst = platform.ninstances[pt];
            if ninst <= 0.0 {
                continue;
            }
            if sat_open[pt] && busy[pt] < ninst - 1e-9 {
                out.sat[pt] = SimDuration::from_secs(t);
                sat_open[pt] = false;
            }
            // Idle instance-seconds within the buffer window.
            let w_end = seg_end.min(horizon);
            if w_end > t {
                out.shortfall[pt] += (ninst - busy[pt]).max(0.0) * (w_end - t);
            }
        }

        if !dt.is_finite() {
            // Nothing runnable: remaining window is pure shortfall.
            for pt in ProcType::ALL {
                let ninst = platform.ninstances[pt];
                if ninst > 0.0 {
                    if sat_open[pt] {
                        out.sat[pt] = SimDuration::from_secs(t);
                        sat_open[pt] = false;
                    }
                    if horizon > t {
                        out.shortfall[pt] += ninst * (horizon - t);
                    }
                }
            }
            break;
        }

        // Advance to the event, compacting completed jobs out of the
        // alive list in place (ascending order is preserved, so
        // same-step completions are discovered in job order exactly as
        // the reference's full scan does).
        t += dt;
        let mut w = 0usize;
        for r in 0..s.alive_idx.len() {
            let iu = s.alive_idx[r];
            let i = iu as usize;
            if s.rates[i] <= 0.0 {
                s.alive_idx[w] = iu;
                w += 1;
                continue;
            }
            s.remaining[i] -= s.rates[i] * dt;
            if s.remaining[i] <= 1e-6 {
                let job = &jobs[i];
                s.done[i] = true;
                alive -= 1;
                type_dirty[job.proc_type.index()] = true;
                let fin = SimDuration::from_secs(t);
                out.finish.push((job.id, fin));
                if job.deadline < platform.now + fin {
                    out.missed.push(job.id);
                }
            } else {
                s.alive_idx[w] = iu;
                w += 1;
            }
        }
        s.alive_idx.truncate(w);
        if alive == 0 {
            for pt in ProcType::ALL {
                let ninst = platform.ninstances[pt];
                if ninst > 0.0 {
                    if sat_open[pt] {
                        out.sat[pt] = SimDuration::from_secs(t);
                        sat_open[pt] = false;
                    }
                    if horizon > t {
                        out.shortfall[pt] += ninst * (horizon - t);
                    }
                }
            }
            break;
        }
        if t > 3650.0 * 86_400.0 {
            // Safety valve: pathological workloads (e.g. zero rates from
            // extreme preference limits) must not hang the emulator.
            break;
        }
    }

    out.missed.sort_unstable();
}

/// The original per-call-allocating implementation, kept verbatim as the
/// differential-testing oracle for [`simulate`] / [`simulate_into`].
pub fn simulate_reference(
    platform: &RrPlatform,
    jobs: &[RrJob],
    buf_window: SimDuration,
) -> RrOutcome {
    // Mutable remaining work; simulation proceeds between job-completion
    // events with piecewise-constant rates.
    let mut remaining: Vec<f64> = jobs.iter().map(|j| j.remaining.secs().max(0.0)).collect();
    let mut done: Vec<bool> = remaining.iter().map(|&r| r <= 0.0).collect();
    let mut missed = HashSet::new();
    let mut finish: Vec<(JobId, SimDuration)> = Vec::with_capacity(jobs.len());
    let mut sat = ProcMap::from_fn(|_| SimDuration::ZERO);
    let mut sat_open = ProcMap::from_fn(|t| platform.ninstances[t] > 0.0);
    let mut shortfall = ProcMap::zero();
    let mut busy_now = ProcMap::zero();

    let on_frac = platform.on_frac.clamp(1e-6, 1.0);
    let horizon = buf_window.secs().max(0.0);
    let mut t = 0.0f64; // offset from now
    let mut first_step = true;

    loop {
        // Per-type, per-project allocation under weighted round robin.
        // rate[i] = fraction of dedicated speed job i runs at.
        let mut rates: Vec<f64> = vec![0.0; jobs.len()];
        let mut busy = ProcMap::zero();

        for pt in ProcType::ALL {
            let ninst = platform.ninstances[pt];
            if ninst <= 0.0 {
                continue;
            }
            // Projects with unfinished jobs of this type, with their total
            // instance demand.
            let mut proj: Vec<(ProjectId, f64, f64)> = Vec::new(); // (id, share, demand)
            for (i, j) in jobs.iter().enumerate() {
                if done[i] || j.proc_type != pt {
                    continue;
                }
                let demand = j.instances.max(1e-9);
                match proj.iter_mut().find(|(id, _, _)| *id == j.project) {
                    Some(entry) => entry.2 += demand,
                    None => proj.push((j.project, platform.share_of(j.project), demand)),
                }
            }
            if proj.is_empty() {
                continue;
            }
            // Share-weighted instance allocation with redistribution of
            // surplus from projects whose demand is below their share.
            let mut alloc: Vec<f64> = vec![0.0; proj.len()];
            let mut capacity = ninst;
            let mut active: Vec<usize> = (0..proj.len()).collect();
            for _ in 0..proj.len() + 1 {
                let wsum: f64 = active.iter().map(|&k| proj[k].1).sum();
                if wsum <= 0.0 || capacity <= 1e-12 || active.is_empty() {
                    break;
                }
                let mut next_active = Vec::new();
                let mut used = 0.0;
                for &k in &active {
                    let fair = capacity * proj[k].1 / wsum;
                    let need = proj[k].2 - alloc[k];
                    if need <= fair + 1e-12 {
                        alloc[k] += need.max(0.0);
                        used += need.max(0.0);
                    } else {
                        alloc[k] += fair;
                        used += fair;
                        next_active.push(k);
                    }
                }
                capacity -= used;
                if next_active.len() == active.len() {
                    break; // nobody saturated; no surplus to redistribute
                }
                active = next_active;
            }
            // Distribute each project's allocation over its jobs
            // (proportional to per-job demand).
            for (k, &(pid, _, demand)) in proj.iter().enumerate() {
                let frac = (alloc[k] / demand).min(1.0);
                for (i, j) in jobs.iter().enumerate() {
                    if !done[i] && j.proc_type == pt && j.project == pid {
                        rates[i] = frac * on_frac;
                        busy[pt] += frac * j.instances;
                    }
                }
            }
        }

        if first_step {
            busy_now = busy;
            first_step = false;
        }

        // Next completion event.
        let mut dt = f64::INFINITY;
        for i in 0..jobs.len() {
            if !done[i] && rates[i] > 0.0 {
                dt = dt.min(remaining[i] / rates[i]);
            }
        }

        // Accrue saturation and shortfall over [t, t+dt).
        let seg_end = if dt.is_finite() { t + dt } else { t };
        for pt in ProcType::ALL {
            let ninst = platform.ninstances[pt];
            if ninst <= 0.0 {
                continue;
            }
            if sat_open[pt] && busy[pt] < ninst - 1e-9 {
                sat[pt] = SimDuration::from_secs(t);
                sat_open[pt] = false;
            }
            // Idle instance-seconds within the buffer window.
            let w_end = seg_end.min(horizon);
            if w_end > t {
                shortfall[pt] += (ninst - busy[pt]).max(0.0) * (w_end - t);
            }
        }

        if !dt.is_finite() {
            // Nothing runnable: remaining window is pure shortfall.
            for pt in ProcType::ALL {
                let ninst = platform.ninstances[pt];
                if ninst > 0.0 {
                    if sat_open[pt] {
                        sat[pt] = SimDuration::from_secs(t);
                        sat_open[pt] = false;
                    }
                    if horizon > t {
                        shortfall[pt] += ninst * (horizon - t);
                    }
                }
            }
            break;
        }

        // Advance to the event.
        t += dt;
        for i in 0..jobs.len() {
            if done[i] || rates[i] <= 0.0 {
                continue;
            }
            remaining[i] -= rates[i] * dt;
            if remaining[i] <= 1e-6 {
                done[i] = true;
                let fin = SimDuration::from_secs(t);
                finish.push((jobs[i].id, fin));
                if jobs[i].deadline < platform.now + fin {
                    missed.insert(jobs[i].id);
                }
            }
        }
        if done.iter().all(|&d| d) {
            for pt in ProcType::ALL {
                let ninst = platform.ninstances[pt];
                if ninst > 0.0 {
                    if sat_open[pt] {
                        sat[pt] = SimDuration::from_secs(t);
                        sat_open[pt] = false;
                    }
                    if horizon > t {
                        shortfall[pt] += ninst * (horizon - t);
                    }
                }
            }
            break;
        }
        if t > 3650.0 * 86_400.0 {
            // Safety valve: pathological workloads (e.g. zero rates from
            // extreme preference limits) must not hang the emulator.
            break;
        }
    }

    let mut missed: Vec<JobId> = missed.into_iter().collect();
    missed.sort_unstable();
    RrOutcome { missed, sat, shortfall, finish, busy_now }
}

//! File-transfer modelling (§6.2 future work, implemented here).
//!
//! Jobs with input files only become runnable after their download
//! completes; jobs with output files are only reportable after their upload
//! completes. Active transfers in one direction share the link bandwidth
//! equally. With no network model configured, transfers complete instantly
//! (the paper's base assumption: "jobs are assumed to be runnable
//! immediately after dispatch").
//!
//! Fault injection: a transfer attempt may be planned to fail once a given
//! number of bytes has moved (`enqueue_faulty`). Failed attempts are
//! reported from [`TransferQueue::advance`] so the client can apply its
//! retry policy; a host crash restarts every in-flight transfer from byte
//! zero ([`TransferQueue::restart_all`]).

use bce_types::{JobId, SimDuration, SimTime};

/// Host link speeds in bytes/second.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NetworkModel {
    pub down_bps: f64,
    pub up_bps: f64,
}

impl NetworkModel {
    pub fn symmetric(bps: f64) -> Self {
        NetworkModel { down_bps: bps, up_bps: bps }
    }

    /// Both directions must have positive, finite bandwidth. Returns the
    /// offending field name on failure.
    pub fn validate(&self) -> Result<(), &'static str> {
        if !(self.down_bps.is_finite() && self.down_bps > 0.0) {
            return Err("down_bps");
        }
        if !(self.up_bps.is_finite() && self.up_bps > 0.0) {
            return Err("up_bps");
        }
        Ok(())
    }
}

#[derive(Debug, Clone, Copy, PartialEq)]
struct Transfer {
    job: JobId,
    bytes_remaining: f64,
    total_bytes: f64,
    /// Fault plan: the attempt fails once `bytes_remaining` drops to this
    /// value (always > 0, so failure strictly precedes completion).
    fail_at_remaining: Option<f64>,
}

impl Transfer {
    /// Bytes left until this transfer's next event (failure or completion).
    fn bytes_to_event(&self) -> f64 {
        match self.fail_at_remaining {
            Some(fail_rem) => self.bytes_remaining - fail_rem,
            None => self.bytes_remaining,
        }
    }
}

/// What happened during one [`TransferQueue::advance`] interval.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct XferEvents {
    /// Jobs whose transfer finished.
    pub completed: Vec<JobId>,
    /// Jobs whose transfer attempt failed mid-flight (removed from the
    /// queue; the owner decides whether to retry).
    pub failed: Vec<JobId>,
}

/// A single-direction transfer queue with equal bandwidth sharing.
#[derive(Debug, Clone)]
pub struct TransferQueue {
    rate_bps: f64,
    active: Vec<Transfer>,
}

impl TransferQueue {
    /// `rate_bps` must be positive and finite — enforced in release builds
    /// too, because a zero/NaN rate silently wedges the event loop (the
    /// next-completion estimate becomes infinite or NaN).
    pub fn new(rate_bps: f64) -> Self {
        assert!(
            rate_bps.is_finite() && rate_bps > 0.0,
            "TransferQueue rate must be positive and finite, got {rate_bps}"
        );
        TransferQueue { rate_bps, active: Vec::new() }
    }

    /// Add a transfer. Zero-byte transfers complete immediately (returned
    /// as `false` = nothing queued).
    pub fn enqueue(&mut self, job: JobId, bytes: f64) -> bool {
        self.enqueue_faulty(job, bytes, None)
    }

    /// Add a transfer that will fail once `fail_after` bytes have moved
    /// (`None` = runs to completion). `fail_after` is clamped below the
    /// transfer size so a planned failure always fires before completion.
    pub fn enqueue_faulty(&mut self, job: JobId, bytes: f64, fail_after: Option<f64>) -> bool {
        if bytes <= 0.0 {
            return false;
        }
        let fail_at_remaining = fail_after.map(|sent| (bytes - sent.max(0.0)).max(1e-9));
        self.active.push(Transfer {
            job,
            bytes_remaining: bytes,
            total_bytes: bytes,
            fail_at_remaining,
        });
        true
    }

    /// Progress transfers over `dt` (only while the network is up);
    /// returns jobs whose transfer finished or failed. Failed transfers
    /// are removed — re-enqueue to retry.
    pub fn advance(&mut self, dt: SimDuration, net_up: bool) -> XferEvents {
        let mut ev = XferEvents::default();
        if !net_up || self.active.is_empty() || !dt.is_positive() {
            return ev;
        }
        // Equal sharing with event cascades inside the interval: each
        // completion (or failure) frees bandwidth for the survivors.
        let mut budget = dt.secs();
        while budget > 1e-12 && !self.active.is_empty() {
            let share = self.rate_bps / self.active.len() as f64;
            // Time until the nearest event (completion or planned failure).
            let min_bytes =
                self.active.iter().map(|t| t.bytes_to_event()).fold(f64::INFINITY, f64::min);
            let t_event = min_bytes.max(0.0) / share;
            let step = t_event.min(budget);
            for t in &mut self.active {
                t.bytes_remaining -= share * step;
            }
            self.active.retain(|t| {
                if let Some(fail_rem) = t.fail_at_remaining {
                    if t.bytes_remaining <= fail_rem + 1e-6 {
                        ev.failed.push(t.job);
                        return false;
                    }
                }
                if t.bytes_remaining <= 1e-6 {
                    ev.completed.push(t.job);
                    false
                } else {
                    true
                }
            });
            budget -= step;
        }
        ev
    }

    /// Time until the next event (completion or planned failure) assuming
    /// the network stays up and the active set is fixed (events only speed
    /// things up, so this is an upper bound — the emulator reschedules
    /// after each event).
    pub fn next_completion_in(&self) -> Option<SimDuration> {
        if self.active.is_empty() {
            return None;
        }
        let share = self.rate_bps / self.active.len() as f64;
        let min_bytes =
            self.active.iter().map(|t| t.bytes_to_event()).fold(f64::INFINITY, f64::min);
        // Quantize to 1 ms so a microscopic residue (left by a prior
        // partial advance) cannot produce a completion time that rounds
        // to "now" and stalls the event loop.
        Some(SimDuration::from_secs((min_bytes / share).max(1e-3)))
    }

    /// Every active transfer as `(job, bytes_remaining, total_bytes,
    /// fail_at_remaining)`, in queue order, for checkpointing.
    pub fn snapshot(&self) -> Vec<(JobId, f64, f64, Option<f64>)> {
        self.active
            .iter()
            .map(|t| (t.job, t.bytes_remaining, t.total_bytes, t.fail_at_remaining))
            .collect()
    }

    /// Overwrite the active set from captured state (checkpoint restore).
    /// Order matters only for reporting; bandwidth sharing is symmetric.
    pub fn restore(&mut self, entries: &[(JobId, f64, f64, Option<f64>)]) {
        self.active.clear();
        for &(job, bytes_remaining, total_bytes, fail_at_remaining) in entries {
            self.active.push(Transfer { job, bytes_remaining, total_bytes, fail_at_remaining });
        }
    }

    /// Drop every in-flight transfer (host crash): returns `(job,
    /// total_bytes)` for each so the owner can re-enqueue from byte zero.
    pub fn restart_all(&mut self) -> Vec<(JobId, f64)> {
        let dropped = self.active.iter().map(|t| (t.job, t.total_bytes)).collect();
        self.active.clear();
        dropped
    }

    pub fn is_empty(&self) -> bool {
        self.active.is_empty()
    }

    pub fn len(&self) -> usize {
        self.active.len()
    }

    pub fn contains(&self, job: JobId) -> bool {
        self.active.iter().any(|t| t.job == job)
    }
}

/// Both directions plus the completion-time helper the emulator polls.
#[derive(Debug, Clone)]
pub struct Transfers {
    pub downloads: TransferQueue,
    pub uploads: TransferQueue,
}

impl Transfers {
    pub fn new(model: Option<NetworkModel>) -> Self {
        // "Instant" = effectively infinite bandwidth.
        let m = model.unwrap_or(NetworkModel::symmetric(1e18));
        if let Err(field) = m.validate() {
            panic!("invalid NetworkModel: non-positive or non-finite {field}");
        }
        Transfers {
            downloads: TransferQueue::new(m.down_bps),
            uploads: TransferQueue::new(m.up_bps),
        }
    }

    pub fn next_event_after(&self, now: SimTime) -> Option<SimTime> {
        let d = self.downloads.next_completion_in();
        let u = self.uploads.next_completion_in();
        match (d, u) {
            (None, None) => None,
            (Some(a), None) => Some(now + a),
            (None, Some(b)) => Some(now + b),
            (Some(a), Some(b)) => Some(now + a.min(b)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn d(s: f64) -> SimDuration {
        SimDuration::from_secs(s)
    }

    #[test]
    fn single_transfer_timing() {
        let mut q = TransferQueue::new(1000.0); // 1000 B/s
        assert!(q.enqueue(JobId(1), 5000.0));
        assert_eq!(q.next_completion_in(), Some(d(5.0)));
        assert!(q.advance(d(4.0), true).completed.is_empty());
        let ev = q.advance(d(1.0), true);
        assert_eq!(ev.completed, vec![JobId(1)]);
        assert!(ev.failed.is_empty());
        assert!(q.is_empty());
    }

    #[test]
    fn equal_sharing_halves_rate() {
        let mut q = TransferQueue::new(1000.0);
        q.enqueue(JobId(1), 1000.0);
        q.enqueue(JobId(2), 1000.0);
        // Each gets 500 B/s: 2 s to finish both.
        assert_eq!(q.next_completion_in(), Some(d(2.0)));
        let ev = q.advance(d(2.0), true);
        assert_eq!(ev.completed.len(), 2);
    }

    #[test]
    fn completion_cascade_within_interval() {
        let mut q = TransferQueue::new(1000.0);
        q.enqueue(JobId(1), 500.0);
        q.enqueue(JobId(2), 2000.0);
        // First second: 500 B/s each; J1 done at t=1. Then J2 gets full
        // 1000 B/s: 1500 B remaining → done at t=2.5.
        let ev = q.advance(d(2.5), true);
        assert_eq!(ev.completed, vec![JobId(1), JobId(2)]);
    }

    #[test]
    fn network_down_stalls() {
        let mut q = TransferQueue::new(1000.0);
        q.enqueue(JobId(1), 100.0);
        assert!(q.advance(d(100.0), false).completed.is_empty());
        assert!(q.contains(JobId(1)));
    }

    #[test]
    fn zero_bytes_never_queued() {
        let mut q = TransferQueue::new(1000.0);
        assert!(!q.enqueue(JobId(1), 0.0));
        assert!(q.is_empty());
        assert_eq!(q.next_completion_in(), None);
    }

    #[test]
    fn transfers_facade() {
        let mut t = Transfers::new(Some(NetworkModel { down_bps: 100.0, up_bps: 50.0 }));
        t.downloads.enqueue(JobId(1), 200.0);
        t.uploads.enqueue(JobId(2), 200.0);
        let now = SimTime::from_secs(10.0);
        // Download in 2 s, upload in 4 s: next event at 12 s.
        assert_eq!(t.next_event_after(now), Some(SimTime::from_secs(12.0)));
        assert_eq!(Transfers::new(None).next_event_after(now), None);
    }

    #[test]
    fn planned_failure_fires_at_byte_position() {
        let mut q = TransferQueue::new(1000.0);
        // Fails after 1500 of 5000 bytes: at t = 1.5 s.
        q.enqueue_faulty(JobId(1), 5000.0, Some(1500.0));
        assert_eq!(q.next_completion_in(), Some(d(1.5)));
        let ev = q.advance(d(1.0), true);
        assert!(ev.failed.is_empty());
        let ev = q.advance(d(0.5), true);
        assert_eq!(ev.failed, vec![JobId(1)]);
        assert!(ev.completed.is_empty());
        assert!(q.is_empty(), "failed transfer leaves the queue");
    }

    #[test]
    fn failure_frees_bandwidth_for_survivors() {
        let mut q = TransferQueue::new(1000.0);
        q.enqueue_faulty(JobId(1), 4000.0, Some(500.0)); // dies at 500 B sent
        q.enqueue(JobId(2), 2000.0);
        // 500 B/s each: J1 fails at t=1 (500 B). J2 then gets 1000 B/s:
        // 1500 B remaining → done at t=2.5.
        let ev = q.advance(d(2.5), true);
        assert_eq!(ev.failed, vec![JobId(1)]);
        assert_eq!(ev.completed, vec![JobId(2)]);
    }

    #[test]
    fn restart_all_reports_totals() {
        let mut q = TransferQueue::new(1000.0);
        q.enqueue(JobId(1), 4000.0);
        q.enqueue(JobId(2), 1000.0);
        q.advance(d(1.0), true); // 500 B each moved
        let dropped = q.restart_all();
        assert_eq!(dropped, vec![(JobId(1), 4000.0), (JobId(2), 1000.0)]);
        assert!(q.is_empty());
    }

    #[test]
    fn network_model_validation() {
        assert!(NetworkModel::symmetric(1e6).validate().is_ok());
        assert_eq!(NetworkModel { down_bps: 0.0, up_bps: 1.0 }.validate(), Err("down_bps"));
        assert_eq!(NetworkModel { down_bps: -5.0, up_bps: 1.0 }.validate(), Err("down_bps"));
        assert_eq!(NetworkModel { down_bps: 1.0, up_bps: f64::NAN }.validate(), Err("up_bps"));
        assert_eq!(NetworkModel { down_bps: 1.0, up_bps: f64::INFINITY }.validate(), Err("up_bps"));
    }

    #[test]
    #[should_panic(expected = "positive and finite")]
    fn zero_rate_rejected_in_release_builds() {
        let _ = TransferQueue::new(0.0);
    }

    #[test]
    #[should_panic(expected = "positive and finite")]
    fn nan_rate_rejected() {
        let _ = TransferQueue::new(f64::NAN);
    }
}

//! File-transfer modelling (§6.2 future work, implemented here).
//!
//! Jobs with input files only become runnable after their download
//! completes; jobs with output files are only reportable after their upload
//! completes. Active transfers in one direction share the link bandwidth
//! equally. With no network model configured, transfers complete instantly
//! (the paper's base assumption: "jobs are assumed to be runnable
//! immediately after dispatch").

use bce_types::{JobId, SimDuration, SimTime};

/// Host link speeds in bytes/second.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NetworkModel {
    pub down_bps: f64,
    pub up_bps: f64,
}

impl NetworkModel {
    pub fn symmetric(bps: f64) -> Self {
        NetworkModel { down_bps: bps, up_bps: bps }
    }
}

#[derive(Debug, Clone, Copy, PartialEq)]
struct Transfer {
    job: JobId,
    bytes_remaining: f64,
}

/// A single-direction transfer queue with equal bandwidth sharing.
#[derive(Debug, Clone)]
pub struct TransferQueue {
    rate_bps: f64,
    active: Vec<Transfer>,
}

impl TransferQueue {
    pub fn new(rate_bps: f64) -> Self {
        debug_assert!(rate_bps > 0.0);
        TransferQueue { rate_bps, active: Vec::new() }
    }

    /// Add a transfer. Zero-byte transfers complete immediately (returned
    /// as `false` = nothing queued).
    pub fn enqueue(&mut self, job: JobId, bytes: f64) -> bool {
        if bytes <= 0.0 {
            return false;
        }
        self.active.push(Transfer { job, bytes_remaining: bytes });
        true
    }

    /// Progress transfers over `dt` (only while the network is up);
    /// returns jobs whose transfer finished.
    pub fn advance(&mut self, dt: SimDuration, net_up: bool) -> Vec<JobId> {
        let mut done = Vec::new();
        if !net_up || self.active.is_empty() || !dt.is_positive() {
            return done;
        }
        // Equal sharing with completion cascades inside the interval.
        let mut budget = dt.secs();
        while budget > 1e-12 && !self.active.is_empty() {
            let share = self.rate_bps / self.active.len() as f64;
            // Time until the smallest transfer completes.
            let min_bytes =
                self.active.iter().map(|t| t.bytes_remaining).fold(f64::INFINITY, f64::min);
            let t_complete = min_bytes / share;
            let step = t_complete.min(budget);
            for t in &mut self.active {
                t.bytes_remaining -= share * step;
            }
            self.active.retain(|t| {
                if t.bytes_remaining <= 1e-6 {
                    done.push(t.job);
                    false
                } else {
                    true
                }
            });
            budget -= step;
        }
        done
    }

    /// Time until the next completion assuming the network stays up and
    /// the active set is fixed (completions only speed things up, so this
    /// is an upper bound — the emulator reschedules after each event).
    pub fn next_completion_in(&self) -> Option<SimDuration> {
        if self.active.is_empty() {
            return None;
        }
        let share = self.rate_bps / self.active.len() as f64;
        let min_bytes =
            self.active.iter().map(|t| t.bytes_remaining).fold(f64::INFINITY, f64::min);
        // Quantize to 1 ms so a microscopic residue (left by a prior
        // partial advance) cannot produce a completion time that rounds
        // to "now" and stalls the event loop.
        Some(SimDuration::from_secs((min_bytes / share).max(1e-3)))
    }

    pub fn is_empty(&self) -> bool {
        self.active.is_empty()
    }

    pub fn len(&self) -> usize {
        self.active.len()
    }

    pub fn contains(&self, job: JobId) -> bool {
        self.active.iter().any(|t| t.job == job)
    }
}

/// Both directions plus the completion-time helper the emulator polls.
#[derive(Debug, Clone)]
pub struct Transfers {
    pub downloads: TransferQueue,
    pub uploads: TransferQueue,
}

impl Transfers {
    pub fn new(model: Option<NetworkModel>) -> Self {
        // "Instant" = effectively infinite bandwidth.
        let m = model.unwrap_or(NetworkModel::symmetric(1e18));
        Transfers {
            downloads: TransferQueue::new(m.down_bps),
            uploads: TransferQueue::new(m.up_bps),
        }
    }

    pub fn next_event_after(&self, now: SimTime) -> Option<SimTime> {
        let d = self.downloads.next_completion_in();
        let u = self.uploads.next_completion_in();
        match (d, u) {
            (None, None) => None,
            (Some(a), None) => Some(now + a),
            (None, Some(b)) => Some(now + b),
            (Some(a), Some(b)) => Some(now + a.min(b)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn d(s: f64) -> SimDuration {
        SimDuration::from_secs(s)
    }

    #[test]
    fn single_transfer_timing() {
        let mut q = TransferQueue::new(1000.0); // 1000 B/s
        assert!(q.enqueue(JobId(1), 5000.0));
        assert_eq!(q.next_completion_in(), Some(d(5.0)));
        assert!(q.advance(d(4.0), true).is_empty());
        let done = q.advance(d(1.0), true);
        assert_eq!(done, vec![JobId(1)]);
        assert!(q.is_empty());
    }

    #[test]
    fn equal_sharing_halves_rate() {
        let mut q = TransferQueue::new(1000.0);
        q.enqueue(JobId(1), 1000.0);
        q.enqueue(JobId(2), 1000.0);
        // Each gets 500 B/s: 2 s to finish both.
        assert_eq!(q.next_completion_in(), Some(d(2.0)));
        let done = q.advance(d(2.0), true);
        assert_eq!(done.len(), 2);
    }

    #[test]
    fn completion_cascade_within_interval() {
        let mut q = TransferQueue::new(1000.0);
        q.enqueue(JobId(1), 500.0);
        q.enqueue(JobId(2), 2000.0);
        // First second: 500 B/s each; J1 done at t=1. Then J2 gets full
        // 1000 B/s: 1500 B remaining → done at t=2.5.
        let done = q.advance(d(2.5), true);
        assert_eq!(done, vec![JobId(1), JobId(2)]);
    }

    #[test]
    fn network_down_stalls() {
        let mut q = TransferQueue::new(1000.0);
        q.enqueue(JobId(1), 100.0);
        assert!(q.advance(d(100.0), false).is_empty());
        assert!(q.contains(JobId(1)));
    }

    #[test]
    fn zero_bytes_never_queued() {
        let mut q = TransferQueue::new(1000.0);
        assert!(!q.enqueue(JobId(1), 0.0));
        assert!(q.is_empty());
        assert_eq!(q.next_completion_in(), None);
    }

    #[test]
    fn transfers_facade() {
        let mut t = Transfers::new(Some(NetworkModel { down_bps: 100.0, up_bps: 50.0 }));
        t.downloads.enqueue(JobId(1), 200.0);
        t.uploads.enqueue(JobId(2), 200.0);
        let now = SimTime::from_secs(10.0);
        // Download in 2 s, upload in 4 s: next event at 12 s.
        assert_eq!(t.next_event_after(now), Some(SimTime::from_secs(12.0)));
        assert_eq!(Transfers::new(None).next_event_after(now), None);
    }
}

//! # bce-client — the emulated BOINC client scheduling machinery
//!
//! The policy content of the paper (§3): round-robin simulation, the
//! job-scheduling variants JS-WRR / JS-LOCAL / JS-GLOBAL, the job-fetch
//! variants JF-ORIG / JF-HYSTERESIS, local-debt and global-REC
//! resource-share accounting, checkpoint-aware task execution, and the
//! file-transfer extension.
//!
//! In the original BCE these components *are* the BOINC client's source
//! code; here they are re-implemented faithfully from the paper's
//! specification.

pub mod accounting;
pub mod client;
pub mod fetch;
pub mod rr_sim;
pub mod sched;
pub mod task;
pub mod xfer;

pub use accounting::{Accounting, AccountingKind, AccountingSnapshot, UsageSample};
pub use client::{
    AdvanceEvents, Client, ClientConfig, ClientProject, ClientScratch, ClientSnapshot, DirtClass,
    DirtyGroups, ProjectClientSnapshot, Reschedule, RrStats, XferRetrySnapshot,
};
pub use fetch::{would_fetch, Backoff, FetchDecision, FetchPolicy, FetchProject, FetchRequest};
pub use rr_sim::{
    simulate as rr_simulate, simulate_into as rr_simulate_into,
    simulate_reference as rr_simulate_reference, RrJob, RrOutcome, RrPlatform, RrScratch,
};
pub use sched::{plan, plan_into, DeadlineOrder, JobSchedPolicy, PlanInput, PlanScratch, RunPlan};
pub use task::{Task, TaskSnapshot, TaskState};
pub use xfer::{NetworkModel, TransferQueue, Transfers};

//! Client job-fetch policy (§3.4): when to issue a scheduler RPC, which
//! project to ask, and how much work to request.
//!
//! Both policies work from the round-robin simulation's outputs:
//!
//! * **JF-ORIG**: whenever `SHORTFALL(T) > 0` for some type, ask the
//!   highest-`PRIO_fetch` project with jobs of that type for
//!   `X·SHORTFALL(T)` instance-seconds, where `X` is that project's
//!   fractional resource share among projects with jobs of type `T`.
//! * **JF-HYSTERESIS**: only when `SAT(T) < min_queue`, and then ask a
//!   *single* project for the *entire* shortfall (computed to the
//!   `max_queue` horizon).
//!
//! The two distinctions (hysteresis trigger; single-project whole-shortfall
//! requests) are exactly what Figure 5 evaluates: fewer scheduler RPCs at
//! the cost of more monotonous execution.

use crate::accounting::Accounting;
use crate::rr_sim::RrOutcome;
use bce_types::{Hardware, Preferences, ProcMap, ProcType, ProjectId, SimTime};

/// Which fetch policy is in force.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FetchPolicy {
    Orig,
    Hysteresis,
}

impl FetchPolicy {
    pub fn name(&self) -> &'static str {
        match self {
            FetchPolicy::Orig => "JF-ORIG",
            FetchPolicy::Hysteresis => "JF-HYSTERESIS",
        }
    }
}

/// Per-project fetch eligibility snapshot, assembled by the client.
#[derive(Debug, Clone)]
pub struct FetchProject {
    pub id: ProjectId,
    pub share: f64,
    /// Which processor types this project supplies jobs for.
    pub supplies: ProcMap<bool>,
    /// Project is backed off / unreachable until this time.
    pub backoff_until: SimTime,
}

/// What to request from one project.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FetchRequest {
    /// Instance-seconds per type.
    pub secs: ProcMap<f64>,
    /// Idle instances per type right now.
    pub instances: ProcMap<f64>,
}

impl FetchRequest {
    pub fn is_empty(&self) -> bool {
        ProcType::ALL.iter().all(|&t| self.secs[t] <= 0.0 && self.instances[t] <= 0.0)
    }
}

/// The fetch decision: at most one project per decision point (the real
/// client issues one RPC at a time).
#[derive(Debug, Clone, PartialEq)]
pub struct FetchDecision {
    pub project: ProjectId,
    pub request: FetchRequest,
}

/// Minimum request worth an RPC, in instance-seconds; avoids chattering
/// on microscopic shortfalls.
const MIN_REQUEST_SECS: f64 = 1.0;

/// Cheap necessary condition for [`decide`] returning a decision: does any
/// processor type trigger the policy at all? Exactly replicates the
/// per-type trigger tests, so callers can skip assembling the per-project
/// eligibility list when no fetch can happen — the common case at most
/// decision points.
pub fn would_fetch(
    policy: FetchPolicy,
    rr: &RrOutcome,
    hw: &Hardware,
    prefs: &Preferences,
    gpu_allowed: bool,
) -> bool {
    let min_queue = prefs.work_buf_min;
    ProcType::ALL.iter().any(|&t| {
        hw.ninstances(t) > 0
            && (!t.is_gpu() || gpu_allowed)
            && rr.shortfall[t] > MIN_REQUEST_SECS
            && match policy {
                FetchPolicy::Orig => true,
                FetchPolicy::Hysteresis => rr.sat[t] < min_queue,
            }
    })
}

/// Decide whether to fetch, from which project, and how much.
///
/// `rr` must have been computed with the `max_queue` buffer window (its
/// `shortfall` is the amount needed to fill the queue to `max_queue`).
#[allow(clippy::too_many_arguments)]
pub fn decide(
    policy: FetchPolicy,
    now: SimTime,
    rr: &RrOutcome,
    hw: &Hardware,
    prefs: &Preferences,
    accounting: &Accounting,
    projects: &[FetchProject],
    gpu_allowed: bool,
) -> Option<FetchDecision> {
    let min_queue = prefs.work_buf_min;
    let mut chosen: Option<(ProjectId, FetchRequest, f64)> = None;

    for t in ProcType::ALL {
        if hw.ninstances(t) == 0 {
            continue;
        }
        if t.is_gpu() && !gpu_allowed {
            continue;
        }
        let shortfall = rr.shortfall[t];
        let triggered = match policy {
            FetchPolicy::Orig => shortfall > MIN_REQUEST_SECS,
            FetchPolicy::Hysteresis => rr.sat[t] < min_queue && shortfall > MIN_REQUEST_SECS,
        };
        if !triggered {
            continue;
        }
        // Projects that can supply type t and aren't backed off.
        let eligible: Vec<&FetchProject> =
            projects.iter().filter(|p| p.supplies[t] && p.backoff_until <= now).collect();
        if eligible.is_empty() {
            continue;
        }
        // Highest PRIO_fetch wins; ties break on project id for
        // determinism.
        let best = eligible
            .iter()
            .max_by(|a, b| {
                let pa = accounting.prio_fetch(a.id, hw);
                let pb = accounting.prio_fetch(b.id, hw);
                pa.partial_cmp(&pb).unwrap_or(std::cmp::Ordering::Equal).then(b.id.cmp(&a.id))
            })
            .expect("non-empty eligible set");

        let amount = match policy {
            FetchPolicy::Orig => {
                // X = fractional resource share of P among projects with
                // jobs of type T.
                let total: f64 = projects.iter().filter(|p| p.supplies[t]).map(|p| p.share).sum();
                let x = if total > 0.0 { best.share / total } else { 0.0 };
                x * shortfall
            }
            FetchPolicy::Hysteresis => shortfall,
        };
        if amount < MIN_REQUEST_SECS {
            continue;
        }
        let idle_now = (hw.ninstances(t) as f64 - rr.busy_now[t]).max(0.0);
        let prio = accounting.prio_fetch(best.id, hw);

        match &mut chosen {
            // Same project already chosen for another type: extend the
            // request (one RPC can ask for several types).
            Some((pid, req, _)) if *pid == best.id => {
                req.secs[t] = amount;
                req.instances[t] = idle_now;
            }
            // Keep the candidate whose chosen project has higher fetch
            // priority; its request covers its types.
            Some((_, _, best_prio)) if prio <= *best_prio => {}
            _ => {
                let mut req = FetchRequest::default();
                req.secs[t] = amount;
                req.instances[t] = idle_now;
                chosen = Some((best.id, req, prio));
            }
        }
    }

    chosen.map(|(project, request, _)| FetchDecision { project, request })
}

/// Per-project RPC backoff state (exponential, reset on success), used when
/// a server is down or has no work. The implementation lives in
/// `bce-faults` as the shared [`bce_faults::RetryPolicy`] machinery; this
/// re-export preserves the original API.
pub use bce_faults::Backoff;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::accounting::AccountingKind;
    use bce_types::SimDuration;

    fn hw() -> Hardware {
        Hardware::cpu_only(4, 1e9).with_group(ProcType::NvidiaGpu, 1, 1e10)
    }

    fn acct(shares: &[(u32, f64)]) -> Accounting {
        Accounting::new(
            AccountingKind::Local,
            shares.iter().map(|&(p, s)| (ProjectId(p), s)),
            SimDuration::from_days(10.0),
        )
    }

    fn rr(shortfall_cpu: f64, sat_cpu: f64) -> RrOutcome {
        let mut shortfall = ProcMap::zero();
        shortfall[ProcType::Cpu] = shortfall_cpu;
        RrOutcome {
            missed: Default::default(),
            sat: ProcMap::from_fn(|t| {
                if t == ProcType::Cpu {
                    SimDuration::from_secs(sat_cpu)
                } else {
                    SimDuration::ZERO
                }
            }),
            shortfall,
            finish: vec![],
            busy_now: ProcMap::zero(),
        }
    }

    fn cpu_project(id: u32, share: f64) -> FetchProject {
        let mut supplies = ProcMap::from_fn(|_| false);
        supplies[ProcType::Cpu] = true;
        FetchProject { id: ProjectId(id), share, supplies, backoff_until: SimTime::ZERO }
    }

    fn prefs() -> Preferences {
        Preferences {
            work_buf_min: SimDuration::from_secs(1800.0),
            work_buf_extra: SimDuration::from_secs(1800.0),
            ..Default::default()
        }
    }

    #[test]
    fn orig_requests_share_fraction() {
        let projects = [cpu_project(0, 1.0), cpu_project(1, 3.0)];
        let a = acct(&[(0, 1.0), (1, 3.0)]);
        // Equal priorities: tie-break lowest id => P0; X = 1/4.
        let d = decide(
            FetchPolicy::Orig,
            SimTime::ZERO,
            &rr(4000.0, 3000.0),
            &hw(),
            &prefs(),
            &a,
            &projects,
            true,
        )
        .expect("must fetch");
        assert_eq!(d.project, ProjectId(0));
        assert!((d.request.secs[ProcType::Cpu] - 1000.0).abs() < 1e-9);
    }

    #[test]
    fn hysteresis_waits_for_min_queue() {
        let projects = [cpu_project(0, 1.0)];
        let a = acct(&[(0, 1.0)]);
        // Saturated beyond min_queue (1800): no fetch despite shortfall.
        let d = decide(
            FetchPolicy::Hysteresis,
            SimTime::ZERO,
            &rr(4000.0, 2500.0),
            &hw(),
            &prefs(),
            &a,
            &projects,
            true,
        );
        assert!(d.is_none());
        // Saturation below min_queue: fetch the whole shortfall.
        let d = decide(
            FetchPolicy::Hysteresis,
            SimTime::ZERO,
            &rr(4000.0, 100.0),
            &hw(),
            &prefs(),
            &a,
            &projects,
            true,
        )
        .expect("must fetch");
        assert!((d.request.secs[ProcType::Cpu] - 4000.0).abs() < 1e-9);
    }

    #[test]
    fn orig_fetches_on_any_shortfall() {
        let projects = [cpu_project(0, 1.0)];
        let a = acct(&[(0, 1.0)]);
        let d = decide(
            FetchPolicy::Orig,
            SimTime::ZERO,
            &rr(50.0, 2500.0),
            &hw(),
            &prefs(),
            &a,
            &projects,
            true,
        );
        assert!(d.is_some(), "ORIG ignores saturation");
    }

    #[test]
    fn highest_prio_project_chosen() {
        let projects = [cpu_project(0, 1.0), cpu_project(1, 1.0)];
        let mut a = acct(&[(0, 1.0), (1, 1.0)]);
        // P1 starved on CPU => higher debt => chosen.
        let mut m = ProcMap::zero();
        m[ProcType::Cpu] = 4.0;
        let used = vec![(ProjectId(0), m)];
        let membership = ProcMap::from_fn(|t| {
            if t == ProcType::Cpu {
                vec![ProjectId(0), ProjectId(1)]
            } else {
                vec![]
            }
        });
        let sample = crate::accounting::UsageSample {
            used,
            runnable: membership.clone(),
            fetchable: membership,
        };
        a.update(SimTime::ZERO, SimTime::from_secs(100.0), &hw(), &sample);
        let d = decide(
            FetchPolicy::Hysteresis,
            SimTime::from_secs(100.0),
            &rr(4000.0, 0.0),
            &hw(),
            &prefs(),
            &a,
            &projects,
            true,
        )
        .unwrap();
        assert_eq!(d.project, ProjectId(1));
    }

    #[test]
    fn backoff_excludes_project() {
        let mut p0 = cpu_project(0, 1.0);
        p0.backoff_until = SimTime::from_secs(1e6);
        let projects = [p0, cpu_project(1, 1.0)];
        let a = acct(&[(0, 1.0), (1, 1.0)]);
        let d = decide(
            FetchPolicy::Hysteresis,
            SimTime::ZERO,
            &rr(4000.0, 0.0),
            &hw(),
            &prefs(),
            &a,
            &projects,
            true,
        )
        .unwrap();
        assert_eq!(d.project, ProjectId(1));
    }

    #[test]
    fn no_projects_supply_type() {
        let projects = [cpu_project(0, 1.0)];
        let a = acct(&[(0, 1.0)]);
        // Only GPU shortfall; no project supplies GPU work.
        let mut out = rr(0.0, 1e9);
        out.shortfall[ProcType::NvidiaGpu] = 5000.0;
        out.sat[ProcType::NvidiaGpu] = SimDuration::ZERO;
        let d = decide(
            FetchPolicy::Hysteresis,
            SimTime::ZERO,
            &out,
            &hw(),
            &prefs(),
            &a,
            &projects,
            true,
        );
        assert!(d.is_none());
    }

    #[test]
    fn gpu_fetch_suppressed_when_gpu_disallowed() {
        let mut p = cpu_project(0, 1.0);
        p.supplies[ProcType::NvidiaGpu] = true;
        let projects = [p];
        let a = acct(&[(0, 1.0)]);
        let mut out = rr(0.0, 1e9);
        out.shortfall[ProcType::NvidiaGpu] = 5000.0;
        out.sat[ProcType::NvidiaGpu] = SimDuration::ZERO;
        let d = decide(
            FetchPolicy::Hysteresis,
            SimTime::ZERO,
            &out,
            &hw(),
            &prefs(),
            &a,
            &projects,
            false,
        );
        assert!(d.is_none());
    }

    #[test]
    fn multi_type_request_merges_for_same_project() {
        let mut p = cpu_project(0, 1.0);
        p.supplies[ProcType::NvidiaGpu] = true;
        let projects = [p];
        let a = acct(&[(0, 1.0)]);
        let mut out = rr(3000.0, 0.0);
        out.shortfall[ProcType::NvidiaGpu] = 500.0;
        out.sat[ProcType::NvidiaGpu] = SimDuration::ZERO;
        let d = decide(
            FetchPolicy::Hysteresis,
            SimTime::ZERO,
            &out,
            &hw(),
            &prefs(),
            &a,
            &projects,
            true,
        )
        .unwrap();
        assert!(d.request.secs[ProcType::Cpu] > 0.0);
        assert!(d.request.secs[ProcType::NvidiaGpu] > 0.0);
    }

    #[test]
    fn backoff_doubles_and_resets() {
        let mut b = Backoff::new();
        assert!(!b.blocked(SimTime::ZERO));
        b.fail(SimTime::ZERO);
        let first = b.until();
        assert!((first.secs() - 60.0).abs() < 1e-9);
        b.fail(first);
        assert!((b.until().secs() - first.secs() - 120.0).abs() < 1e-9);
        for _ in 0..20 {
            let now = b.until();
            b.fail(now);
            assert!((b.until() - now).secs() <= Backoff::MAX.secs() + 1e-9);
        }
        b.succeed();
        assert!(!b.blocked(SimTime::from_secs(1e9)));
    }

    #[test]
    fn idle_instances_requested() {
        let projects = [cpu_project(0, 1.0)];
        let a = acct(&[(0, 1.0)]);
        let mut out = rr(4000.0, 0.0);
        out.busy_now[ProcType::Cpu] = 1.0; // 3 of 4 CPUs idle
        let d = decide(
            FetchPolicy::Hysteresis,
            SimTime::ZERO,
            &out,
            &hw(),
            &prefs(),
            &a,
            &projects,
            true,
        )
        .unwrap();
        assert!((d.request.instances[ProcType::Cpu] - 3.0).abs() < 1e-9);
    }
}

//! Resource-share accounting (§3.1).
//!
//! The client must decide whether each project has used too much or too
//! little resource relative to its share. Two approaches, compared in §5.2
//! and §5.4:
//!
//! * **Local accounting** (JS-LOCAL): per (project, processor type) *debts*
//!   `D(P,T)`, incremented in proportion to the project's share and
//!   decremented as it uses instances of that type.
//!   `PRIO_sched(P,T) = D(P,T)`; `PRIO_fetch(P)` is the peak-FLOPS-weighted
//!   sum of the per-type debts.
//! * **Global accounting** (JS-GLOBAL): `REC(P)`, an exponentially-weighted
//!   recent average of the peak FLOPS used by the project *across all
//!   processor types*; priority compares share fraction against REC
//!   fraction. The averaging half-life `A` is the parameter swept in §5.4
//!   (Figure 6).

use bce_types::{Hardware, ProcMap, ProcType, ProjectId, SimDuration, SimTime};
use std::collections::BTreeMap;

/// Which accounting scheme is in force.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccountingKind {
    Local,
    Global,
}

/// Debt magnitude clamp (seconds of instance time), mirroring the BOINC
/// client's debt limits so one starved project cannot build unbounded
/// claim on the host.
const MAX_DEBT: f64 = 86_400.0;

/// Per-interval usage report fed to [`Accounting::update`].
///
/// Rebuilt once per client advance (the hot path), so the containers are
/// flat vectors that can be cleared and refilled without reallocating;
/// each project appears at most once in `used`.
#[derive(Debug, Clone, Default)]
pub struct UsageSample {
    /// Instances of each type in use by each project over the interval.
    pub used: Vec<(ProjectId, ProcMap<f64>)>,
    /// Projects with runnable/queued work of each type. Short-term
    /// (scheduling) debt accrues only while a project can actually use the
    /// resource; §2.1 leaves this unspecified and we follow the BOINC
    /// client.
    pub runnable: ProcMap<Vec<ProjectId>>,
    /// Projects that *supply* jobs of each type, whether or not any are
    /// queued right now. Long-term (fetch) debt accrues over these, so a
    /// project the client never asked for work still builds its claim —
    /// without this, whichever project wins the first tie monopolizes
    /// fetch forever.
    pub fetchable: ProcMap<Vec<ProjectId>>,
}

impl UsageSample {
    /// Empty the sample, keeping allocated capacity for reuse.
    pub fn clear(&mut self) {
        self.used.clear();
        for t in ProcType::ALL {
            self.runnable[t].clear();
            self.fetchable[t].clear();
        }
    }

    /// Instances in use by project `p`, if any.
    pub fn used_of(&self, p: ProjectId) -> Option<&ProcMap<f64>> {
        self.used.iter().find(|(id, _)| *id == p).map(|(_, m)| m)
    }

    /// The (created-on-demand) usage entry for project `p`.
    pub fn used_entry(&mut self, p: ProjectId) -> &mut ProcMap<f64> {
        let idx = match self.used.iter().position(|(id, _)| *id == p) {
            Some(i) => i,
            None => {
                self.used.push((p, ProcMap::zero()));
                self.used.len() - 1
            }
        };
        &mut self.used[idx].1
    }
}

/// Complete mutable accounting state, for checkpointing. Shares, kind and
/// half-life are scenario constants reconstructed from the scenario itself.
#[derive(Debug, Clone, Default)]
pub struct AccountingSnapshot {
    pub debts: Vec<(ProjectId, ProcMap<f64>)>,
    pub lt_debts: Vec<(ProjectId, ProcMap<f64>)>,
    pub rec: Vec<(ProjectId, f64)>,
    pub rec_updated: SimTime,
}

/// Resource-share accounting state.
#[derive(Debug, Clone)]
pub struct Accounting {
    kind: AccountingKind,
    shares: Vec<(ProjectId, f64)>,
    /// Local: per-project, per-type short-term debt in instance-seconds
    /// (drives job scheduling).
    debts: BTreeMap<ProjectId, ProcMap<f64>>,
    /// Local: per-project, per-type long-term debt (drives work fetch).
    lt_debts: BTreeMap<ProjectId, ProcMap<f64>>,
    /// Global: REC value and its last-update instant (decay is applied
    /// lazily).
    rec: BTreeMap<ProjectId, f64>,
    rec_updated: SimTime,
    half_life: SimDuration,
}

impl Accounting {
    pub fn new(
        kind: AccountingKind,
        shares: impl IntoIterator<Item = (ProjectId, f64)>,
        half_life: SimDuration,
    ) -> Self {
        let shares: Vec<_> = shares.into_iter().collect();
        let debts: BTreeMap<ProjectId, ProcMap<f64>> =
            shares.iter().map(|&(p, _)| (p, ProcMap::zero())).collect();
        let lt_debts = debts.clone();
        let rec = shares.iter().map(|&(p, _)| (p, 0.0)).collect();
        Accounting { kind, shares, debts, lt_debts, rec, rec_updated: SimTime::ZERO, half_life }
    }

    pub fn kind(&self) -> AccountingKind {
        self.kind
    }

    /// Capture all mutable state (debts, REC averages, decay clock).
    pub fn snapshot(&self) -> AccountingSnapshot {
        AccountingSnapshot {
            debts: self.debts.iter().map(|(&p, m)| (p, *m)).collect(),
            lt_debts: self.lt_debts.iter().map(|(&p, m)| (p, *m)).collect(),
            rec: self.rec.iter().map(|(&p, &r)| (p, r)).collect(),
            rec_updated: self.rec_updated,
        }
    }

    /// Overwrite all mutable state from a capture (checkpoint restore).
    pub fn restore_snapshot(&mut self, snap: &AccountingSnapshot) {
        self.debts = snap.debts.iter().map(|&(p, m)| (p, m)).collect();
        self.lt_debts = snap.lt_debts.iter().map(|&(p, m)| (p, m)).collect();
        self.rec = snap.rec.iter().map(|&(p, r)| (p, r)).collect();
        self.rec_updated = snap.rec_updated;
    }

    pub fn half_life(&self) -> SimDuration {
        self.half_life
    }

    fn share_of(&self, p: ProjectId) -> f64 {
        self.shares.iter().find(|(id, _)| *id == p).map_or(0.0, |(_, s)| *s)
    }

    /// `P`'s fraction of the total resource share.
    pub fn share_frac(&self, p: ProjectId) -> f64 {
        let total: f64 = self.shares.iter().map(|(_, s)| *s).sum();
        if total > 0.0 {
            self.share_of(p) / total
        } else {
            0.0
        }
    }

    /// Account an interval `[prev, now)` of usage.
    pub fn update(&mut self, prev: SimTime, now: SimTime, hw: &Hardware, sample: &UsageSample) {
        let dt = (now - prev).secs();
        if dt <= 0.0 {
            return;
        }
        match self.kind {
            AccountingKind::Local => self.update_local(dt, hw, sample),
            AccountingKind::Global => self.update_global(now, hw, sample),
        }
    }

    fn update_local(&mut self, dt: f64, hw: &Hardware, sample: &UsageSample) {
        Self::update_debt_map(
            &mut self.debts,
            &self.shares,
            dt,
            hw,
            &sample.used,
            &sample.runnable,
        );
        Self::update_debt_map(
            &mut self.lt_debts,
            &self.shares,
            dt,
            hw,
            &sample.used,
            &sample.fetchable,
        );
    }

    fn update_debt_map(
        debts: &mut BTreeMap<ProjectId, ProcMap<f64>>,
        shares: &[(ProjectId, f64)],
        dt: f64,
        hw: &Hardware,
        used: &[(ProjectId, ProcMap<f64>)],
        membership: &ProcMap<Vec<ProjectId>>,
    ) {
        let share_of = |p: ProjectId| -> f64 {
            shares.iter().find(|(id, _)| *id == p).map_or(0.0, |(_, s)| *s)
        };
        let used_of = |p: ProjectId| used.iter().find(|(id, _)| *id == p).map(|(_, m)| m);
        for t in ProcType::ALL {
            let ninst = hw.ninstances(t) as f64;
            if ninst <= 0.0 {
                continue;
            }
            let eligible = &membership[t];
            if eligible.is_empty() {
                continue;
            }
            let share_sum: f64 = eligible.iter().map(|&p| share_of(p)).sum();
            if share_sum <= 0.0 {
                continue;
            }
            // Accrue: entitled instance-seconds minus used instance-seconds.
            for &p in eligible {
                let entitled = share_of(p) / share_sum * ninst;
                let u = used_of(p).map_or(0.0, |m| m[t]);
                let d = debts.entry(p).or_insert_with(ProcMap::zero);
                d[t] += dt * (entitled - u);
            }
            // Projects not eligible still pay for use (e.g. finishing a
            // last job while out of further work).
            for &(p, ref used_map) in used {
                if !eligible.contains(&p) && used_map[t] > 0.0 {
                    let d = debts.entry(p).or_insert_with(ProcMap::zero);
                    d[t] -= dt * used_map[t];
                }
            }
            // Normalize to zero mean over eligible projects and clamp.
            let mean: f64 =
                eligible.iter().map(|&p| debts[&p][t]).sum::<f64>() / eligible.len() as f64;
            for &p in eligible {
                let d = debts.get_mut(&p).expect("debt entry");
                d[t] = (d[t] - mean).clamp(-MAX_DEBT, MAX_DEBT);
            }
        }
    }

    fn update_global(&mut self, now: SimTime, hw: &Hardware, sample: &UsageSample) {
        let dt = (now - self.rec_updated).secs();
        if dt <= 0.0 {
            return;
        }
        let ln2 = std::f64::consts::LN_2;
        let hl = self.half_life.secs();
        let decay = (-ln2 * dt / hl).exp();
        let gain = hl / ln2 * (1.0 - decay);
        for (p, rec) in self.rec.iter_mut() {
            // Peak FLOPS in use by this project over the interval.
            let rate: f64 = sample
                .used_of(*p)
                .map_or(0.0, |m| ProcType::ALL.iter().map(|&t| m[t] * hw.flops_per_inst(t)).sum());
            *rec = *rec * decay + rate * gain;
        }
        self.rec_updated = now;
    }

    /// `PRIO_sched(P, T)`: higher means the project deserves the processor
    /// more.
    pub fn prio_sched(&self, p: ProjectId, t: ProcType) -> f64 {
        match self.kind {
            AccountingKind::Local => self.debts.get(&p).map_or(0.0, |d| d[t]),
            AccountingKind::Global => self.global_prio(p),
        }
    }

    /// `PRIO_fetch(P)`: higher means new work should come from this
    /// project.
    pub fn prio_fetch(&self, p: ProjectId, hw: &Hardware) -> f64 {
        match self.kind {
            AccountingKind::Local => self
                .lt_debts
                .get(&p)
                .map_or(0.0, |d| ProcType::ALL.iter().map(|&t| d[t] * hw.peak_flops(t)).sum()),
            AccountingKind::Global => self.global_prio(p),
        }
    }

    fn global_prio(&self, p: ProjectId) -> f64 {
        let share_sum: f64 = self.shares.iter().map(|(_, s)| *s).sum();
        let share_frac = if share_sum > 0.0 { self.share_of(p) / share_sum } else { 0.0 };
        let rec_sum: f64 = self.rec.values().sum();
        let rec_frac =
            if rec_sum > 0.0 { self.rec.get(&p).copied().unwrap_or(0.0) / rec_sum } else { 0.0 };
        share_frac - rec_frac
    }

    /// Raw REC value (global accounting), for inspection/plots.
    pub fn rec_of(&self, p: ProjectId) -> f64 {
        *self.rec.get(&p).unwrap_or(&0.0)
    }

    /// Raw short-term debt (local accounting).
    pub fn debt_of(&self, p: ProjectId, t: ProcType) -> f64 {
        self.debts.get(&p).map_or(0.0, |d| d[t])
    }

    /// Raw long-term (fetch) debt (local accounting).
    pub fn lt_debt_of(&self, p: ProjectId, t: ProcType) -> f64 {
        self.lt_debts.get(&p).map_or(0.0, |d| d[t])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hw() -> Hardware {
        Hardware::cpu_only(4, 1e9).with_group(ProcType::NvidiaGpu, 1, 1e10)
    }

    fn shares2() -> Vec<(ProjectId, f64)> {
        vec![(ProjectId(0), 1.0), (ProjectId(1), 1.0)]
    }

    fn sample(
        used: &[(u32, f64, f64)], // (project, cpus, gpus)
        runnable_cpu: &[u32],
        runnable_gpu: &[u32],
    ) -> UsageSample {
        let mut s = UsageSample::default();
        for &(p, c, g) in used {
            let mut m = ProcMap::zero();
            m[ProcType::Cpu] = c;
            m[ProcType::NvidiaGpu] = g;
            s.used.push((ProjectId(p), m));
        }
        s.runnable[ProcType::Cpu] = runnable_cpu.iter().map(|&p| ProjectId(p)).collect();
        s.runnable[ProcType::NvidiaGpu] = runnable_gpu.iter().map(|&p| ProjectId(p)).collect();
        s.fetchable = s.runnable.clone();
        s
    }

    fn t(s: f64) -> SimTime {
        SimTime::from_secs(s)
    }

    #[test]
    fn local_debt_rises_for_starved_project() {
        let mut a = Accounting::new(AccountingKind::Local, shares2(), SimDuration::from_days(10.0));
        // P0 uses all 4 CPUs; both runnable; P1 starves.
        let s = sample(&[(0, 4.0, 0.0)], &[0, 1], &[]);
        a.update(t(0.0), t(100.0), &hw(), &s);
        assert!(a.prio_sched(ProjectId(1), ProcType::Cpu) > 0.0);
        assert!(a.prio_sched(ProjectId(0), ProcType::Cpu) < 0.0);
        // Zero-mean normalization.
        let sum = a.debt_of(ProjectId(0), ProcType::Cpu) + a.debt_of(ProjectId(1), ProcType::Cpu);
        assert!(sum.abs() < 1e-6);
    }

    #[test]
    fn local_debt_balanced_when_fairly_shared() {
        let mut a = Accounting::new(AccountingKind::Local, shares2(), SimDuration::from_days(10.0));
        let s = sample(&[(0, 2.0, 0.0), (1, 2.0, 0.0)], &[0, 1], &[]);
        a.update(t(0.0), t(1000.0), &hw(), &s);
        assert!(a.prio_sched(ProjectId(0), ProcType::Cpu).abs() < 1e-6);
        assert!(a.prio_sched(ProjectId(1), ProcType::Cpu).abs() < 1e-6);
    }

    #[test]
    fn local_debts_are_per_type() {
        // This is the §5.2 mechanism: CPU debts balance independently of
        // the GPU, so local accounting splits the CPU evenly even when one
        // project hogs a big GPU.
        let mut a = Accounting::new(AccountingKind::Local, shares2(), SimDuration::from_days(10.0));
        let s = sample(&[(0, 2.0, 0.0), (1, 2.0, 1.0)], &[0, 1], &[1]);
        a.update(t(0.0), t(1000.0), &hw(), &s);
        assert!(a.prio_sched(ProjectId(0), ProcType::Cpu).abs() < 1e-6);
        assert!(a.prio_sched(ProjectId(1), ProcType::Cpu).abs() < 1e-6);
    }

    #[test]
    fn global_prio_penalizes_gpu_hog() {
        // Same situation under global accounting: P1's GPU FLOPS dwarf
        // P0's CPU share, so P0's priority is higher on every resource.
        let mut a =
            Accounting::new(AccountingKind::Global, shares2(), SimDuration::from_days(10.0));
        let s = sample(&[(0, 2.0, 0.0), (1, 2.0, 1.0)], &[0, 1], &[1]);
        a.update(t(0.0), t(10_000.0), &hw(), &s);
        assert!(
            a.prio_sched(ProjectId(0), ProcType::Cpu) > a.prio_sched(ProjectId(1), ProcType::Cpu)
        );
        assert!(a.prio_fetch(ProjectId(0), &hw()) > a.prio_fetch(ProjectId(1), &hw()));
    }

    #[test]
    fn global_rec_decays_with_half_life() {
        let hl = SimDuration::from_secs(1000.0);
        let mut a = Accounting::new(AccountingKind::Global, shares2(), hl);
        let s = sample(&[(0, 4.0, 0.0)], &[0, 1], &[]);
        a.update(t(0.0), t(100.0), &hw(), &s);
        let r0 = a.rec_of(ProjectId(0));
        assert!(r0 > 0.0);
        // One half-life of idleness halves REC.
        let idle = sample(&[], &[0, 1], &[]);
        a.update(t(100.0), t(1100.0), &hw(), &idle);
        assert!((a.rec_of(ProjectId(0)) / r0 - 0.5).abs() < 1e-9);
    }

    #[test]
    fn short_half_life_forgets_faster() {
        // The Figure 6 mechanism: after the same burst of use, a short
        // half-life erases the over-share memory sooner.
        let mk = |hl: f64| {
            let mut a =
                Accounting::new(AccountingKind::Global, shares2(), SimDuration::from_secs(hl));
            // P0 monopolizes the host for a while, then P1 does.
            let s0 = sample(&[(0, 4.0, 0.0)], &[0, 1], &[]);
            a.update(t(0.0), t(1000.0), &hw(), &s0);
            let s1 = sample(&[(1, 4.0, 0.0)], &[0, 1], &[]);
            a.update(t(1000.0), t(11_000.0), &hw(), &s1);
            a.global_prio(ProjectId(0))
        };
        let short = mk(500.0);
        let long = mk(50_000.0);
        // Short memory forgets P0's monopolization entirely (prio back near
        // +share_frac); long memory still holds it against P0.
        assert!(long < short, "long {long} vs short {short}");
    }

    #[test]
    fn fetch_prio_weights_by_peak_flops() {
        let mut a = Accounting::new(AccountingKind::Local, shares2(), SimDuration::from_days(10.0));
        // P0 starved on GPU (10 GF) but even on CPU: GPU debt dominates
        // fetch priority.
        let s = sample(&[(1, 0.0, 1.0)], &[], &[0, 1]);
        a.update(t(0.0), t(100.0), &hw(), &s);
        assert!(a.prio_fetch(ProjectId(0), &hw()) > 0.0);
        assert!(a.prio_fetch(ProjectId(1), &hw()) < 0.0);
    }

    #[test]
    fn debt_clamped() {
        let mut a = Accounting::new(AccountingKind::Local, shares2(), SimDuration::from_days(10.0));
        let s = sample(&[(0, 4.0, 0.0)], &[0, 1], &[]);
        // Enormous starvation interval: debt must clamp at MAX_DEBT.
        a.update(t(0.0), t(1e9), &hw(), &s);
        assert!(a.prio_sched(ProjectId(1), ProcType::Cpu) <= MAX_DEBT + 1e-9);
        assert!(a.prio_sched(ProjectId(0), ProcType::Cpu) >= -MAX_DEBT - 1e-9);
    }

    #[test]
    fn non_eligible_user_still_pays() {
        let mut a = Accounting::new(AccountingKind::Local, shares2(), SimDuration::from_days(10.0));
        // P1 uses CPU while not eligible (no runnable work listed).
        let s = sample(&[(1, 2.0, 0.0)], &[0], &[]);
        a.update(t(0.0), t(100.0), &hw(), &s);
        assert!(a.debt_of(ProjectId(1), ProcType::Cpu) < 0.0);
    }
}

//! Deterministic random-number generation.
//!
//! Every stochastic process in the emulator (job runtimes, availability
//! transitions, server downtime, estimate errors, …) draws from its own
//! *named stream*, derived from the scenario seed. Two runs of the same
//! scenario are bit-identical, and adding draws to one component does not
//! perturb another — essential for the paper's debugging workflow, where a
//! volunteer-reported anomaly must reproduce exactly under a debugger.
//!
//! The generator is xoshiro256++ (public-domain reference algorithm by
//! Blackman & Vigna), seeded through SplitMix64, implemented here to keep
//! the simulation core dependency-free and its output stable forever.

/// SplitMix64 step: used for seeding and for hashing stream names.
#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E3779B97F4A7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

/// FNV-1a, for turning stream names into seed material.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xCBF29CE484222325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001B3);
    }
    h
}

/// A xoshiro256++ generator.
///
/// ```
/// use bce_sim::Rng;
/// // Named streams: adding draws to one component never perturbs another.
/// let mut runtimes = Rng::stream(42, "runtimes");
/// let mut avail = Rng::stream(42, "availability");
/// let x = runtimes.uniform();
/// assert!((0.0..1.0).contains(&x));
/// // Reproducible: same seed + stream name, same values.
/// assert_eq!(Rng::stream(42, "runtimes").next_u64(), Rng::stream(42, "runtimes").next_u64());
/// assert_ne!(runtimes.next_u64(), avail.next_u64());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Rng {
    s: [u64; 4],
}

impl Rng {
    /// Create from a raw 64-bit seed (expanded via SplitMix64).
    pub fn from_seed(seed: u64) -> Self {
        let mut sm = seed;
        let s =
            [splitmix64(&mut sm), splitmix64(&mut sm), splitmix64(&mut sm), splitmix64(&mut sm)];
        // xoshiro must not start from the all-zero state.
        if s == [0, 0, 0, 0] {
            Rng { s: [1, 2, 3, 4] }
        } else {
            Rng { s }
        }
    }

    /// Create the named stream `name` of the scenario-level seed. Streams
    /// with different names are statistically independent.
    pub fn stream(seed: u64, name: &str) -> Self {
        Rng::from_seed(seed ^ fnv1a(name.as_bytes()))
    }

    /// Derive a child stream, e.g. one per project: `rng.fork("p3")`.
    pub fn fork(&mut self, name: &str) -> Rng {
        let salt = self.next_u64();
        Rng::from_seed(salt ^ fnv1a(name.as_bytes()))
    }

    /// The raw xoshiro256++ state, for checkpointing a stream position.
    pub fn state(&self) -> [u64; 4] {
        self.s
    }

    /// Rebuild a generator at an exact stream position previously captured
    /// with [`Rng::state`]. The all-zero state (degenerate for xoshiro) is
    /// unreachable from any constructor here, so a captured state is always
    /// valid; it is still mapped to the same fallback `from_seed` uses,
    /// defensively, so a hand-forged zero state cannot wedge the generator.
    pub fn from_state(s: [u64; 4]) -> Self {
        if s == [0, 0, 0, 0] {
            Rng { s: [1, 2, 3, 4] }
        } else {
            Rng { s }
        }
    }

    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Uniform in `[0, 1)` with 53 bits of precision.
    #[inline]
    pub fn uniform(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform in `[lo, hi)`.
    #[inline]
    pub fn range(&mut self, lo: f64, hi: f64) -> f64 {
        lo + (hi - lo) * self.uniform()
    }

    /// Uniform integer in `[0, n)`. `n` must be positive.
    #[inline]
    pub fn below(&mut self, n: usize) -> usize {
        debug_assert!(n > 0);
        // Multiply-shift rejection-free mapping; bias is negligible for the
        // small `n` used in job-mix selection.
        ((self.next_u64() as u128 * n as u128) >> 64) as usize
    }

    /// Bernoulli trial.
    #[inline]
    pub fn chance(&mut self, p: f64) -> bool {
        self.uniform() < p
    }

    /// Pick an index from non-negative weights (sum > 0).
    pub fn pick_weighted(&mut self, weights: &[f64]) -> usize {
        let total: f64 = weights.iter().sum();
        debug_assert!(total > 0.0, "pick_weighted needs positive total weight");
        let mut x = self.uniform() * total;
        for (i, &w) in weights.iter().enumerate() {
            x -= w;
            if x < 0.0 {
                return i;
            }
        }
        weights.len() - 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        let mut a = Rng::from_seed(42);
        let mut b = Rng::from_seed(42);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn streams_differ() {
        let mut a = Rng::stream(42, "runtimes");
        let mut b = Rng::stream(42, "availability");
        let same = (0..100).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn uniform_in_range() {
        let mut r = Rng::from_seed(7);
        for _ in 0..10_000 {
            let x = r.uniform();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn uniform_mean_is_half() {
        let mut r = Rng::from_seed(11);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| r.uniform()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn below_bounds() {
        let mut r = Rng::from_seed(13);
        let mut seen = [false; 10];
        for _ in 0..10_000 {
            let i = r.below(10);
            assert!(i < 10);
            seen[i] = true;
        }
        assert!(seen.iter().all(|&s| s), "all buckets hit");
    }

    #[test]
    fn weighted_pick_respects_weights() {
        let mut r = Rng::from_seed(17);
        let w = [1.0, 0.0, 3.0];
        let mut counts = [0usize; 3];
        for _ in 0..40_000 {
            counts[r.pick_weighted(&w)] += 1;
        }
        assert_eq!(counts[1], 0);
        let ratio = counts[2] as f64 / counts[0] as f64;
        assert!((ratio - 3.0).abs() < 0.3, "ratio {ratio}");
    }

    #[test]
    fn fork_independent_of_later_parent_use() {
        let mut p1 = Rng::from_seed(5);
        let mut p2 = Rng::from_seed(5);
        let mut c1 = p1.fork("child");
        let mut c2 = p2.fork("child");
        // draw differently from the parents afterwards
        p1.next_u64();
        for _ in 0..50 {
            assert_eq!(c1.next_u64(), c2.next_u64());
        }
    }

    #[test]
    fn zero_seed_works() {
        let mut r = Rng::from_seed(0);
        // must not be a degenerate all-zero state
        let any_nonzero = (0..10).any(|_| r.next_u64() != 0);
        assert!(any_nonzero);
    }
}

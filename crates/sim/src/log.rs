//! The emulator's message log.
//!
//! BCE produces "a message log detailing the scheduling decisions" (§4.3);
//! when a volunteer reports an anomaly, this log is what developers read.
//! Logging is levelled and per-component so noisy components can be
//! silenced; formatting is deferred behind `enabled()` checks so a disabled
//! log costs nothing on hot paths.

use bce_types::SimTime;
use std::fmt;

#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Level {
    Debug,
    Info,
    Warn,
}

/// The emulator component that emitted a message, mirroring the paper's
/// policy decomposition (§1): client job scheduling, client job fetch,
/// server-side dispatch, plus infrastructure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Component {
    Sched,
    Fetch,
    Server,
    Avail,
    Task,
    Emulator,
}

impl Component {
    pub fn name(self) -> &'static str {
        match self {
            Component::Sched => "sched",
            Component::Fetch => "fetch",
            Component::Server => "server",
            Component::Avail => "avail",
            Component::Task => "task",
            Component::Emulator => "emu",
        }
    }

    /// Inverse of [`Component::name`], for checkpoint deserialization.
    pub fn from_name(name: &str) -> Option<Self> {
        Some(match name {
            "sched" => Component::Sched,
            "fetch" => Component::Fetch,
            "server" => Component::Server,
            "avail" => Component::Avail,
            "task" => Component::Task,
            "emu" => Component::Emulator,
            _ => return None,
        })
    }
}

impl Level {
    pub fn name(self) -> &'static str {
        match self {
            Level::Debug => "debug",
            Level::Info => "info",
            Level::Warn => "warn",
        }
    }

    /// Inverse of [`Level::name`], for checkpoint deserialization.
    pub fn from_name(name: &str) -> Option<Self> {
        Some(match name {
            "debug" => Level::Debug,
            "info" => Level::Info,
            "warn" => Level::Warn,
            _ => return None,
        })
    }
}

#[derive(Debug, Clone)]
pub struct LogEntry {
    pub time: SimTime,
    pub level: Level,
    pub component: Component,
    pub message: String,
}

impl fmt::Display for LogEntry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let lvl = match self.level {
            Level::Debug => "D",
            Level::Info => "I",
            Level::Warn => "W",
        };
        write!(f, "[{} {} {:6}] {}", self.time, lvl, self.component.name(), self.message)
    }
}

/// A buffered, levelled message log.
#[derive(Debug, Clone)]
pub struct MsgLog {
    min_level: Level,
    entries: Vec<LogEntry>,
    capacity: usize,
    dropped: u64,
}

impl MsgLog {
    /// A log that keeps everything at `min_level` and above, bounded at
    /// `capacity` entries (oldest kept; later entries counted as dropped so
    /// long emulations cannot exhaust memory).
    pub fn new(min_level: Level, capacity: usize) -> Self {
        MsgLog { min_level, entries: Vec::new(), capacity, dropped: 0 }
    }

    /// A log that records nothing (for benchmark runs).
    pub fn disabled() -> Self {
        MsgLog { min_level: Level::Warn, entries: Vec::new(), capacity: 0, dropped: 0 }
    }

    /// As [`MsgLog::new`], but reusing a previously allocated entry buffer
    /// (cleared first). Together with [`MsgLog::into_entries`] this lets an
    /// emulator arena recycle the log allocation across runs.
    ///
    /// Reuse contract: only the *allocation* carries over. The entries are
    /// cleared and the `dropped` counter restarts at zero, so a log built
    /// on a recycled buffer is observably identical to one built by
    /// [`MsgLog::new`] — even when the surrendered log had overflowed
    /// (`dropped() > 0`). Determinism across fresh and reused arenas
    /// depends on this.
    pub fn with_buffer(min_level: Level, capacity: usize, mut entries: Vec<LogEntry>) -> Self {
        entries.clear();
        MsgLog { min_level, entries, capacity, dropped: 0 }
    }

    /// Consume the log and hand back its entry buffer for reuse.
    ///
    /// The returned vector still holds this log's entries (callers may
    /// read them first); it is NOT cleared here so the hand-off stays
    /// move-only. Pass it back through [`MsgLog::with_buffer`], which
    /// clears it and resets the drop counter — never splice a returned
    /// buffer into a log by hand, or stale entries and a stale `dropped`
    /// count would leak into the next run.
    pub fn into_entries(self) -> Vec<LogEntry> {
        self.entries
    }

    #[inline]
    pub fn enabled(&self, level: Level) -> bool {
        self.capacity > 0 && level >= self.min_level
    }

    pub fn push(&mut self, time: SimTime, level: Level, component: Component, message: String) {
        if !self.enabled(level) {
            return;
        }
        if self.entries.len() >= self.capacity {
            self.dropped += 1;
            return;
        }
        self.entries.push(LogEntry { time, level, component, message });
    }

    pub fn info(&mut self, time: SimTime, component: Component, f: impl FnOnce() -> String) {
        if self.enabled(Level::Info) {
            self.push(time, Level::Info, component, f());
        }
    }

    pub fn debug(&mut self, time: SimTime, component: Component, f: impl FnOnce() -> String) {
        if self.enabled(Level::Debug) {
            self.push(time, Level::Debug, component, f());
        }
    }

    pub fn warn(&mut self, time: SimTime, component: Component, f: impl FnOnce() -> String) {
        if self.enabled(Level::Warn) {
            self.push(time, Level::Warn, component, f());
        }
    }

    pub fn entries(&self) -> &[LogEntry] {
        &self.entries
    }

    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Overwrite the recorded history (checkpoint restore). Level and
    /// capacity are unchanged; the existing buffer allocation is reused.
    pub fn restore_history(&mut self, entries: impl IntoIterator<Item = LogEntry>, dropped: u64) {
        self.entries.clear();
        self.entries.extend(entries);
        self.dropped = dropped;
    }

    pub fn render(&self) -> String {
        let mut out = String::new();
        for e in &self.entries {
            out.push_str(&e.to_string());
            out.push('\n');
        }
        if self.dropped > 0 {
            out.push_str(&format!("... {} further messages dropped (capacity)\n", self.dropped));
        }
        out
    }
}

impl Default for MsgLog {
    fn default() -> Self {
        MsgLog::new(Level::Info, 100_000)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: f64) -> SimTime {
        SimTime::from_secs(s)
    }

    #[test]
    fn level_filtering() {
        let mut log = MsgLog::new(Level::Info, 10);
        log.debug(t(1.0), Component::Sched, || "hidden".into());
        log.info(t(2.0), Component::Sched, || "shown".into());
        log.warn(t(3.0), Component::Fetch, || "warned".into());
        assert_eq!(log.entries().len(), 2);
        assert!(log.entries()[0].message.contains("shown"));
    }

    #[test]
    fn disabled_log_records_nothing() {
        let mut log = MsgLog::disabled();
        log.warn(t(1.0), Component::Emulator, || panic!("must not format"));
        assert!(log.entries().is_empty());
        assert!(!log.enabled(Level::Warn));
    }

    #[test]
    fn capacity_bound() {
        let mut log = MsgLog::new(Level::Info, 2);
        for i in 0..5 {
            log.info(t(i as f64), Component::Task, || format!("m{i}"));
        }
        assert_eq!(log.entries().len(), 2);
        assert_eq!(log.dropped(), 3);
        assert!(log.render().contains("3 further messages dropped"));
    }

    #[test]
    fn recycled_overflowed_buffer_resets_dropped_counter() {
        // Overflow a log so its dropped counter is non-zero, then recycle
        // its buffer: the new log must start with dropped() == 0 and be
        // allowed the full capacity again (the with_buffer contract).
        let mut log = MsgLog::new(Level::Info, 2);
        for i in 0..7 {
            log.info(t(i as f64), Component::Task, || format!("m{i}"));
        }
        assert_eq!(log.dropped(), 5);
        let mut recycled = MsgLog::with_buffer(Level::Info, 2, log.into_entries());
        assert_eq!(recycled.dropped(), 0);
        assert!(recycled.entries().is_empty());
        recycled.info(t(0.0), Component::Task, || "a".into());
        recycled.info(t(1.0), Component::Task, || "b".into());
        assert_eq!(recycled.entries().len(), 2);
        assert_eq!(recycled.dropped(), 0);
        assert!(!recycled.render().contains("dropped"));
    }

    #[test]
    fn recycled_buffer_behaves_like_fresh() {
        let mut log = MsgLog::new(Level::Info, 10);
        for i in 0..10 {
            log.info(t(i as f64), Component::Task, || format!("m{i}"));
        }
        let buf = log.into_entries();
        let cap = buf.capacity();
        assert!(cap >= 10);
        let mut recycled = MsgLog::with_buffer(Level::Info, 10, buf);
        assert!(recycled.entries().is_empty());
        assert_eq!(recycled.dropped(), 0);
        recycled.info(t(1.0), Component::Task, || "fresh".into());
        assert_eq!(recycled.entries().len(), 1);
        assert!(recycled.into_entries().capacity() >= cap, "allocation must survive");
    }

    #[test]
    fn entry_display() {
        let e = LogEntry {
            time: t(61.0),
            level: Level::Info,
            component: Component::Server,
            message: "dispatched 3 jobs".into(),
        };
        let s = e.to_string();
        assert!(s.contains("server"), "{s}");
        assert!(s.contains("dispatched 3 jobs"), "{s}");
    }
}

//! The discrete-event queue.
//!
//! A priority queue of `(time, payload)` entries with deterministic FIFO
//! ordering among equal times (a monotone sequence number breaks ties).
//! Determinism matters: the emulator's whole value is exact reproducibility
//! of a reported scheduling anomaly.

use bce_types::SimTime;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

struct Entry<E> {
    time: SimTime,
    seq: u64,
    payload: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse: BinaryHeap is a max-heap, we want earliest-first.
        other.time.cmp(&self.time).then_with(|| other.seq.cmp(&self.seq))
    }
}

/// An earliest-first event queue with FIFO tie-breaking.
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    seq: u64,
}

impl<E> EventQueue<E> {
    pub fn new() -> Self {
        EventQueue { heap: BinaryHeap::new(), seq: 0 }
    }

    pub fn with_capacity(cap: usize) -> Self {
        EventQueue { heap: BinaryHeap::with_capacity(cap), seq: 0 }
    }

    /// Schedule `payload` at `time`.
    pub fn push(&mut self, time: SimTime, payload: E) {
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Entry { time, seq, payload });
    }

    /// Remove and return the earliest event.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        self.heap.pop().map(|e| (e.time, e.payload))
    }

    /// Time of the earliest event without removing it.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.time)
    }

    pub fn len(&self) -> usize {
        self.heap.len()
    }

    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    pub fn clear(&mut self) {
        self.heap.clear();
    }

    /// Empty the queue *and* restart the FIFO tie-break sequence, keeping
    /// the heap's allocation. This is the arena-reuse entry point: a queue
    /// recycled across emulation runs behaves bit-identically to a freshly
    /// constructed one.
    pub fn reset(&mut self) {
        self.heap.clear();
        self.seq = 0;
    }

    /// Allocated capacity of the underlying heap (for reuse diagnostics).
    pub fn capacity(&self) -> usize {
        self.heap.capacity()
    }

    /// The next tie-break sequence number that [`EventQueue::push`] would
    /// assign (part of the queue's deterministic state).
    pub fn next_seq(&self) -> u64 {
        self.seq
    }
}

impl<E: Clone> EventQueue<E> {
    /// Snapshot every pending entry as `(time, seq, payload)`, sorted by
    /// `(time, seq)` — i.e. in pop order — plus the next sequence number.
    /// Restoring this snapshot reproduces pops (including FIFO tie-breaks
    /// among equal times) bit-identically.
    pub fn snapshot(&self) -> (Vec<(SimTime, u64, E)>, u64) {
        let mut entries: Vec<(SimTime, u64, E)> =
            self.heap.iter().map(|e| (e.time, e.seq, e.payload.clone())).collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0).then_with(|| a.1.cmp(&b.1)));
        (entries, self.seq)
    }

    /// Rebuild the queue from a [`EventQueue::snapshot`]: every entry keeps
    /// its original tie-break sequence number, and future pushes continue
    /// from `next_seq`.
    pub fn restore(&mut self, entries: &[(SimTime, u64, E)], next_seq: u64) {
        self.heap.clear();
        for (time, seq, payload) in entries {
            self.heap.push(Entry { time: *time, seq: *seq, payload: payload.clone() });
        }
        self.seq = next_seq;
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: f64) -> SimTime {
        SimTime::from_secs(s)
    }

    #[test]
    fn earliest_first() {
        let mut q = EventQueue::new();
        q.push(t(5.0), "b");
        q.push(t(1.0), "a");
        q.push(t(9.0), "c");
        assert_eq!(q.peek_time(), Some(t(1.0)));
        assert_eq!(q.pop(), Some((t(1.0), "a")));
        assert_eq!(q.pop(), Some((t(5.0), "b")));
        assert_eq!(q.pop(), Some((t(9.0), "c")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn fifo_among_equal_times() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.push(t(7.0), i);
        }
        for i in 0..100 {
            assert_eq!(q.pop(), Some((t(7.0), i)));
        }
    }

    #[test]
    fn interleaved_push_pop_keeps_order() {
        let mut q = EventQueue::new();
        q.push(t(3.0), 3);
        q.push(t(1.0), 1);
        assert_eq!(q.pop().unwrap().1, 1);
        q.push(t(2.0), 2);
        assert_eq!(q.pop().unwrap().1, 2);
        assert_eq!(q.pop().unwrap().1, 3);
        assert!(q.is_empty());
    }

    #[test]
    fn len_and_clear() {
        let mut q = EventQueue::new();
        q.push(t(1.0), ());
        q.push(t(2.0), ());
        assert_eq!(q.len(), 2);
        q.clear();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
    }

    #[test]
    fn reset_keeps_allocation_and_restarts_sequence() {
        let mut q = EventQueue::with_capacity(128);
        let cap = q.capacity();
        assert!(cap >= 128);
        for i in 0..100 {
            q.push(t(1.0), i);
        }
        q.reset();
        assert!(q.is_empty());
        assert!(q.capacity() >= cap, "reset must keep the allocation");
        // After reset, FIFO tie-breaking restarts exactly as in a fresh
        // queue: pushes at an equal time pop in insertion order.
        for i in 0..50 {
            q.push(t(3.0), i);
        }
        for i in 0..50 {
            assert_eq!(q.pop(), Some((t(3.0), i)));
        }
    }
}

//! # bce-sim — discrete-event simulation substrate
//!
//! The infrastructure beneath the emulator: a deterministic event queue,
//! named random-number streams with from-scratch distributions (the paper
//! models job runtimes as normal and availability periods as exponential,
//! §4.3), online statistics for the figures of merit, per-instance usage
//! timelines for the visualization, and the levelled message log.
//!
//! Everything here is deterministic given a seed — the emulator exists to
//! reproduce field anomalies exactly (§4.3), so no wall-clock time, no
//! global RNG, no hash-order dependence.

pub mod dist;
pub mod log;
pub mod queue;
pub mod rng;
pub mod stats;
pub mod timeline;

pub use dist::{Constant, Distribution, Exponential, LogNormal, Normal, TruncatedNormal, Uniform};
pub use log::{Component, Level, LogEntry, MsgLog};
pub use queue::EventQueue;
pub use rng::Rng;
pub use stats::{rms, ExpAvg, Histogram, OnlineStats, TimeWeighted};
pub use timeline::{InstanceTrack, Occupancy, Segment, Timeline};

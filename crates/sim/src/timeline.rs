//! Per-instance usage timelines.
//!
//! BCE "generates a time-line visualization of processor usage" (§4.3).
//! This module records, for every processor instance, which job/project
//! occupied it over which interval; the renderer in `bce-core` turns the
//! records into the ASCII visualization, and metrics can query utilization
//! directly.

use bce_types::{InstanceId, JobId, ProjectId, SimTime};

/// What an instance was doing during a segment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Occupancy {
    Idle,
    /// The host was off / computing disallowed.
    Unavailable,
    Busy {
        project: ProjectId,
        job: JobId,
    },
}

/// A maximal interval of constant occupancy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Segment {
    pub start: SimTime,
    pub end: SimTime,
    pub occ: Occupancy,
}

/// Usage history of one processor instance.
#[derive(Debug, Clone)]
pub struct InstanceTrack {
    pub instance: InstanceId,
    segments: Vec<Segment>,
}

impl InstanceTrack {
    pub fn new(instance: InstanceId) -> Self {
        InstanceTrack { instance, segments: Vec::new() }
    }

    /// Record occupancy over `[start, end)`; merges with the previous
    /// segment when contiguous and equal.
    pub fn record(&mut self, start: SimTime, end: SimTime, occ: Occupancy) {
        if end <= start {
            return;
        }
        if let Some(last) = self.segments.last_mut() {
            debug_assert!(start >= last.end - (last.end - last.start) * 1e-9);
            if last.occ == occ && (start - last.end).secs().abs() < 1e-6 {
                last.end = end;
                return;
            }
        }
        self.segments.push(Segment { start, end, occ });
    }

    pub fn segments(&self) -> &[Segment] {
        &self.segments
    }

    /// Replace this track's history wholesale (checkpoint restore).
    pub fn restore_segments(&mut self, segments: impl IntoIterator<Item = Segment>) {
        self.segments.clear();
        self.segments.extend(segments);
    }

    /// Occupancy at time `t` (None before the first / after the last record).
    pub fn occupancy_at(&self, t: SimTime) -> Option<Occupancy> {
        let idx = self.segments.partition_point(|s| s.end <= t);
        self.segments.get(idx).and_then(|s| (s.start <= t).then_some(s.occ))
    }

    /// Total busy seconds in the track.
    pub fn busy_secs(&self) -> f64 {
        self.segments
            .iter()
            .filter(|s| matches!(s.occ, Occupancy::Busy { .. }))
            .map(|s| (s.end - s.start).secs())
            .sum()
    }
}

/// Usage history of all instances on the host.
#[derive(Debug, Clone, Default)]
pub struct Timeline {
    tracks: Vec<InstanceTrack>,
}

impl Timeline {
    pub fn new(instances: impl IntoIterator<Item = InstanceId>) -> Self {
        Timeline { tracks: instances.into_iter().map(InstanceTrack::new).collect() }
    }

    pub fn track_mut(&mut self, instance: InstanceId) -> Option<&mut InstanceTrack> {
        self.tracks.iter_mut().find(|t| t.instance == instance)
    }

    pub fn tracks(&self) -> &[InstanceTrack] {
        &self.tracks
    }

    /// End time of the latest segment across all tracks.
    pub fn horizon(&self) -> SimTime {
        self.tracks
            .iter()
            .filter_map(|t| t.segments().last())
            .map(|s| s.end)
            .max()
            .unwrap_or(SimTime::ZERO)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bce_types::ProcType;

    fn inst(i: u32) -> InstanceId {
        InstanceId { proc_type: ProcType::Cpu, index: i }
    }
    fn t(s: f64) -> SimTime {
        SimTime::from_secs(s)
    }
    fn busy(p: u32, j: u64) -> Occupancy {
        Occupancy::Busy { project: ProjectId(p), job: JobId(j) }
    }

    #[test]
    fn records_and_merges() {
        let mut tr = InstanceTrack::new(inst(0));
        tr.record(t(0.0), t(10.0), busy(0, 1));
        tr.record(t(10.0), t(20.0), busy(0, 1)); // merge
        tr.record(t(20.0), t(30.0), busy(1, 2));
        assert_eq!(tr.segments().len(), 2);
        assert_eq!(tr.segments()[0].end, t(20.0));
        assert_eq!(tr.busy_secs(), 30.0);
    }

    #[test]
    fn zero_length_ignored() {
        let mut tr = InstanceTrack::new(inst(0));
        tr.record(t(5.0), t(5.0), Occupancy::Idle);
        assert!(tr.segments().is_empty());
    }

    #[test]
    fn occupancy_lookup() {
        let mut tr = InstanceTrack::new(inst(0));
        tr.record(t(0.0), t(10.0), busy(0, 1));
        tr.record(t(10.0), t(20.0), Occupancy::Idle);
        assert_eq!(tr.occupancy_at(t(5.0)), Some(busy(0, 1)));
        assert_eq!(tr.occupancy_at(t(10.0)), Some(Occupancy::Idle));
        assert_eq!(tr.occupancy_at(t(25.0)), None);
    }

    #[test]
    fn timeline_horizon() {
        let mut tl = Timeline::new([inst(0), inst(1)]);
        tl.track_mut(inst(1)).unwrap().record(t(0.0), t(42.0), Occupancy::Idle);
        assert_eq!(tl.horizon(), t(42.0));
        assert_eq!(tl.tracks().len(), 2);
        assert!(tl.track_mut(inst(9)).is_none());
    }
}

//! Online statistics used when accumulating figures of merit.

use bce_types::{SimDuration, SimTime};

/// Welford's online mean/variance, plus min/max.
#[derive(Debug, Clone, PartialEq)]
pub struct OnlineStats {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl OnlineStats {
    pub fn new() -> Self {
        OnlineStats { n: 0, mean: 0.0, m2: 0.0, min: f64::INFINITY, max: f64::NEG_INFINITY }
    }

    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let d = x - self.mean;
        self.mean += d / self.n as f64;
        self.m2 += d * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    pub fn count(&self) -> u64 {
        self.n
    }
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }
    /// Population variance.
    pub fn variance(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.m2 / self.n as f64
        }
    }
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }
    pub fn min(&self) -> f64 {
        self.min
    }
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Raw Welford state `(n, mean, m2, min, max)` for checkpointing.
    pub fn parts(&self) -> (u64, f64, f64, f64, f64) {
        (self.n, self.mean, self.m2, self.min, self.max)
    }

    /// Rebuild from [`OnlineStats::parts`]. Restoring and continuing to
    /// `push` is bit-identical to never having paused.
    pub fn from_parts(n: u64, mean: f64, m2: f64, min: f64, max: f64) -> Self {
        OnlineStats { n, mean, m2, min, max }
    }
}

impl Default for OnlineStats {
    fn default() -> Self {
        Self::new()
    }
}

/// Root-mean-square of a slice.
pub fn rms(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    (xs.iter().map(|x| x * x).sum::<f64>() / xs.len() as f64).sqrt()
}

/// Integrates a piecewise-constant signal over time: `add(x, dt)`
/// accumulates `x·dt`; `time_average()` divides by total time.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct TimeWeighted {
    integral: f64,
    total_time: f64,
}

impl TimeWeighted {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn add(&mut self, value: f64, dt: SimDuration) {
        let dt = dt.secs();
        debug_assert!(dt >= 0.0);
        self.integral += value * dt;
        self.total_time += dt;
    }

    pub fn integral(&self) -> f64 {
        self.integral
    }

    pub fn total_time(&self) -> f64 {
        self.total_time
    }

    pub fn time_average(&self) -> f64 {
        if self.total_time > 0.0 {
            self.integral / self.total_time
        } else {
            0.0
        }
    }
}

/// An exponentially-weighted average with a configurable half-life — the
/// paper's `REC(P)` estimator (§3.1, global accounting; §5.4 sweeps the
/// half-life `A`).
///
/// Semantics follow BOINC's recent-estimated-credit: the state decays with
/// half-life `A`, and work adds in linearly. `update(now, rate)` accounts
/// a constant accrual `rate` over the span since the last update:
///
/// `V(t+dt) = V(t)·2^(−dt/A) + rate·A/ln2·(1 − 2^(−dt/A))`
///
/// so a constant rate converges to `rate·A/ln2` (a rate-to-level
/// conversion); comparing projects only needs relative values.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExpAvg {
    half_life: f64,
    value: f64,
    last_update: SimTime,
}

impl ExpAvg {
    pub fn new(half_life: SimDuration) -> Self {
        debug_assert!(half_life.is_positive());
        ExpAvg { half_life: half_life.secs(), value: 0.0, last_update: SimTime::ZERO }
    }

    pub fn value(&self) -> f64 {
        self.value
    }

    /// Decay to `now` and accrue `rate` (units/second) over the interval.
    pub fn update(&mut self, now: SimTime, rate: f64) {
        let dt = (now - self.last_update).secs();
        if dt < 0.0 {
            return;
        }
        let ln2 = std::f64::consts::LN_2;
        let decay = (-ln2 * dt / self.half_life).exp();
        let gain = self.half_life / ln2 * (1.0 - decay);
        self.value = self.value * decay + rate * gain;
        self.last_update = now;
    }

    /// Decay only (no accrual) — equivalent to `update(now, 0.0)`.
    pub fn decay_to(&mut self, now: SimTime) {
        self.update(now, 0.0);
    }
}

/// A fixed-bin histogram over `[lo, hi)` with under/overflow bins.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    bins: Vec<u64>,
    underflow: u64,
    overflow: u64,
}

impl Histogram {
    pub fn new(lo: f64, hi: f64, nbins: usize) -> Self {
        assert!(hi > lo && nbins > 0);
        Histogram { lo, hi, bins: vec![0; nbins], underflow: 0, overflow: 0 }
    }

    pub fn push(&mut self, x: f64) {
        if x < self.lo {
            self.underflow += 1;
        } else if x >= self.hi {
            self.overflow += 1;
        } else {
            let n = self.bins.len();
            let i = ((x - self.lo) / (self.hi - self.lo) * n as f64) as usize;
            self.bins[i.min(n - 1)] += 1;
        }
    }

    pub fn bins(&self) -> &[u64] {
        &self.bins
    }
    pub fn underflow(&self) -> u64 {
        self.underflow
    }
    pub fn overflow(&self) -> u64 {
        self.overflow
    }
    pub fn total(&self) -> u64 {
        self.bins.iter().sum::<u64>() + self.underflow + self.overflow
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn online_stats_basic() {
        let mut s = OnlineStats::new();
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            s.push(x);
        }
        assert_eq!(s.count(), 8);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        assert!((s.variance() - 4.0).abs() < 1e-12);
        assert_eq!(s.min(), 2.0);
        assert_eq!(s.max(), 9.0);
    }

    #[test]
    fn empty_stats_are_zero() {
        let s = OnlineStats::new();
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.variance(), 0.0);
    }

    #[test]
    fn rms_matches_hand_calc() {
        assert_eq!(rms(&[]), 0.0);
        assert!((rms(&[3.0, 4.0]) - (12.5f64).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn time_weighted_average() {
        let mut tw = TimeWeighted::new();
        tw.add(1.0, SimDuration::from_secs(10.0));
        tw.add(0.0, SimDuration::from_secs(30.0));
        assert!((tw.time_average() - 0.25).abs() < 1e-12);
        assert_eq!(tw.integral(), 10.0);
        assert_eq!(tw.total_time(), 40.0);
    }

    #[test]
    fn expavg_converges_to_rate_times_hl_over_ln2() {
        let hl = SimDuration::from_secs(100.0);
        let mut e = ExpAvg::new(hl);
        let mut t = SimTime::ZERO;
        for _ in 0..1000 {
            t += SimDuration::from_secs(10.0);
            e.update(t, 2.0);
        }
        let expected = 2.0 * 100.0 / std::f64::consts::LN_2;
        assert!((e.value() / expected - 1.0).abs() < 1e-6, "{} vs {}", e.value(), expected);
    }

    #[test]
    fn expavg_halves_per_half_life() {
        let mut e = ExpAvg::new(SimDuration::from_secs(50.0));
        e.update(SimTime::from_secs(0.0), 0.0);
        // Inject: one interval of rate then decay.
        e.update(SimTime::from_secs(1.0), 100.0);
        let v1 = e.value();
        e.decay_to(SimTime::from_secs(51.0));
        assert!((e.value() / v1 - 0.5).abs() < 1e-9);
    }

    #[test]
    fn expavg_update_step_independence() {
        // Updating in one 100 s step or ten 10 s steps gives the same value.
        let hl = SimDuration::from_secs(30.0);
        let mut a = ExpAvg::new(hl);
        let mut b = ExpAvg::new(hl);
        a.update(SimTime::from_secs(100.0), 3.0);
        for i in 1..=10 {
            b.update(SimTime::from_secs(10.0 * i as f64), 3.0);
        }
        assert!((a.value() - b.value()).abs() < 1e-9);
    }

    #[test]
    fn histogram_bins() {
        let mut h = Histogram::new(0.0, 10.0, 10);
        for x in [-1.0, 0.0, 0.5, 5.0, 9.99, 10.0, 42.0] {
            h.push(x);
        }
        assert_eq!(h.underflow(), 1);
        assert_eq!(h.overflow(), 2);
        assert_eq!(h.bins()[0], 2);
        assert_eq!(h.bins()[5], 1);
        assert_eq!(h.bins()[9], 1);
        assert_eq!(h.total(), 7);
    }
}

//! Probability distributions used by the simulation (§4.3: job runtimes are
//! normally distributed; availability periods are exponentially
//! distributed). Implemented from first principles so simulation output is
//! stable across dependency upgrades.

use crate::rng::Rng;

/// Something a value can be drawn from.
pub trait Distribution {
    fn sample(&self, rng: &mut Rng) -> f64;
    /// The distribution's mean, used by policies that reason about
    /// expectations (e.g. duty cycles).
    fn mean(&self) -> f64;
}

/// Normal(mean, sd) via the Marsaglia polar method. Not cached across calls
/// so sampling stays stateless and reproducible per call site.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Normal {
    pub mean: f64,
    pub sd: f64,
}

impl Normal {
    pub fn new(mean: f64, sd: f64) -> Self {
        debug_assert!(sd >= 0.0);
        Normal { mean, sd }
    }

    /// Standard normal draw.
    pub fn std_sample(rng: &mut Rng) -> f64 {
        loop {
            let u = 2.0 * rng.uniform() - 1.0;
            let v = 2.0 * rng.uniform() - 1.0;
            let s = u * u + v * v;
            if s > 0.0 && s < 1.0 {
                return u * (-2.0 * s.ln() / s).sqrt();
            }
        }
    }
}

impl Distribution for Normal {
    fn sample(&self, rng: &mut Rng) -> f64 {
        self.mean + self.sd * Normal::std_sample(rng)
    }
    fn mean(&self) -> f64 {
        self.mean
    }
}

/// A normal truncated below at `floor` (resampled; falls back to the floor
/// after a bounded number of attempts so adversarial parameters cannot
/// hang the simulation). Job runtimes use this: "run times are normally
/// distributed" but must be positive.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TruncatedNormal {
    pub normal: Normal,
    pub floor: f64,
}

impl TruncatedNormal {
    pub fn positive(mean: f64, sd: f64) -> Self {
        TruncatedNormal { normal: Normal::new(mean, sd), floor: mean * 1e-3 }
    }
}

impl Distribution for TruncatedNormal {
    fn sample(&self, rng: &mut Rng) -> f64 {
        for _ in 0..64 {
            let x = self.normal.sample(rng);
            if x >= self.floor {
                return x;
            }
        }
        self.floor
    }
    fn mean(&self) -> f64 {
        // Truncation bias is negligible for the cv <= 0.3 regimes we use.
        self.normal.mean
    }
}

/// Exponential with the given mean (inverse-CDF method).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Exponential {
    pub mean: f64,
}

impl Exponential {
    pub fn new(mean: f64) -> Self {
        debug_assert!(mean > 0.0);
        Exponential { mean }
    }
}

impl Distribution for Exponential {
    fn sample(&self, rng: &mut Rng) -> f64 {
        // 1 - uniform() is in (0, 1], so ln() is finite.
        -self.mean * (1.0 - rng.uniform()).ln()
    }
    fn mean(&self) -> f64 {
        self.mean
    }
}

/// Log-normal parameterized by the underlying normal's `mu`/`sigma`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LogNormal {
    pub mu: f64,
    pub sigma: f64,
}

impl LogNormal {
    pub fn new(mu: f64, sigma: f64) -> Self {
        LogNormal { mu, sigma }
    }

    /// Construct from the distribution's own median and a multiplicative
    /// spread factor (sigma in log-space).
    pub fn from_median(median: f64, sigma: f64) -> Self {
        LogNormal { mu: median.ln(), sigma }
    }
}

impl Distribution for LogNormal {
    fn sample(&self, rng: &mut Rng) -> f64 {
        (self.mu + self.sigma * Normal::std_sample(rng)).exp()
    }
    fn mean(&self) -> f64 {
        (self.mu + 0.5 * self.sigma * self.sigma).exp()
    }
}

/// Uniform over `[lo, hi)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Uniform {
    pub lo: f64,
    pub hi: f64,
}

impl Distribution for Uniform {
    fn sample(&self, rng: &mut Rng) -> f64 {
        rng.range(self.lo, self.hi)
    }
    fn mean(&self) -> f64 {
        0.5 * (self.lo + self.hi)
    }
}

/// A point mass (deterministic value); handy for turning stochastic knobs
/// off in tests.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Constant(pub f64);

impl Distribution for Constant {
    fn sample(&self, _rng: &mut Rng) -> f64 {
        self.0
    }
    fn mean(&self) -> f64 {
        self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_stats(d: &impl Distribution, n: usize, seed: u64) -> (f64, f64) {
        let mut rng = Rng::from_seed(seed);
        let xs: Vec<f64> = (0..n).map(|_| d.sample(&mut rng)).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        (mean, var)
    }

    #[test]
    fn normal_moments() {
        let d = Normal::new(10.0, 2.0);
        let (m, v) = sample_stats(&d, 100_000, 1);
        assert!((m - 10.0).abs() < 0.05, "mean {m}");
        assert!((v - 4.0).abs() < 0.15, "var {v}");
    }

    #[test]
    fn exponential_moments() {
        let d = Exponential::new(5.0);
        let (m, v) = sample_stats(&d, 200_000, 2);
        assert!((m - 5.0).abs() < 0.1, "mean {m}");
        assert!((v - 25.0).abs() < 1.0, "var {v}");
    }

    #[test]
    fn exponential_positive() {
        let d = Exponential::new(1.0);
        let mut rng = Rng::from_seed(3);
        for _ in 0..10_000 {
            assert!(d.sample(&mut rng) >= 0.0);
        }
    }

    #[test]
    fn truncated_normal_respects_floor() {
        let d = TruncatedNormal { normal: Normal::new(1.0, 5.0), floor: 0.01 };
        let mut rng = Rng::from_seed(4);
        for _ in 0..10_000 {
            assert!(d.sample(&mut rng) >= 0.01);
        }
    }

    #[test]
    fn lognormal_median() {
        let d = LogNormal::from_median(100.0, 0.5);
        let mut rng = Rng::from_seed(5);
        let mut xs: Vec<f64> = (0..50_001).map(|_| d.sample(&mut rng)).collect();
        xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = xs[25_000];
        assert!((median / 100.0 - 1.0).abs() < 0.05, "median {median}");
        assert!(d.mean() > 100.0); // log-normal mean exceeds median
    }

    #[test]
    fn uniform_and_constant() {
        let u = Uniform { lo: 2.0, hi: 4.0 };
        let mut rng = Rng::from_seed(6);
        for _ in 0..1000 {
            let x = u.sample(&mut rng);
            assert!((2.0..4.0).contains(&x));
        }
        assert_eq!(u.mean(), 3.0);
        assert_eq!(Constant(7.0).sample(&mut rng), 7.0);
        assert_eq!(Constant(7.0).mean(), 7.0);
    }
}

//! Property tests for the simulation substrate.

use bce_sim::{Distribution, EventQueue, ExpAvg, Exponential, Normal, Rng, TruncatedNormal};
use bce_types::{SimDuration, SimTime};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig { cases: 128 })]

    /// The event queue pops in (time, insertion) order — equivalent to a
    /// stable sort by time.
    #[test]
    fn queue_matches_stable_sort(times in proptest::collection::vec(0.0f64..1e6, 1..200)) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.push(SimTime::from_secs(t), i);
        }
        let mut expected: Vec<(f64, usize)> =
            times.iter().copied().enumerate().map(|(i, t)| (t, i)).collect();
        expected.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap().then(a.1.cmp(&b.1)));
        let mut popped = Vec::new();
        while let Some((t, i)) = q.pop() {
            popped.push((t.secs(), i));
        }
        prop_assert_eq!(popped, expected);
    }

    /// ExpAvg is independent of update granularity: many small steps with
    /// the same rate equal one big step.
    #[test]
    fn expavg_step_merging(
        half_life in 10.0f64..1e5,
        rate in 0.0f64..1e3,
        splits in proptest::collection::vec(1.0f64..1e4, 1..20),
    ) {
        let total: f64 = splits.iter().sum();
        let mut one = ExpAvg::new(SimDuration::from_secs(half_life));
        one.update(SimTime::from_secs(total), rate);
        let mut many = ExpAvg::new(SimDuration::from_secs(half_life));
        let mut t = 0.0;
        for s in &splits {
            t += s;
            many.update(SimTime::from_secs(t), rate);
        }
        let scale = one.value().abs().max(1.0);
        prop_assert!((one.value() - many.value()).abs() < 1e-9 * scale,
            "one={} many={}", one.value(), many.value());
    }

    /// Distribution outputs respect their support.
    #[test]
    fn distribution_supports(seed in any::<u64>(), mean in 1.0f64..1e4) {
        let mut rng = Rng::from_seed(seed);
        let exp = Exponential::new(mean);
        for _ in 0..100 {
            prop_assert!(exp.sample(&mut rng) >= 0.0);
        }
        let tn = TruncatedNormal::positive(mean, mean * 0.5);
        for _ in 0..100 {
            prop_assert!(tn.sample(&mut rng) > 0.0);
        }
    }

    /// Named streams are reproducible and distinct.
    #[test]
    fn rng_streams(seed in any::<u64>()) {
        let mut a1 = Rng::stream(seed, "alpha");
        let mut a2 = Rng::stream(seed, "alpha");
        let mut b = Rng::stream(seed, "beta");
        let xs: Vec<u64> = (0..32).map(|_| a1.next_u64()).collect();
        let ys: Vec<u64> = (0..32).map(|_| a2.next_u64()).collect();
        let zs: Vec<u64> = (0..32).map(|_| b.next_u64()).collect();
        prop_assert_eq!(&xs, &ys);
        prop_assert_ne!(&xs, &zs);
    }

    /// pick_weighted never selects a zero-weight entry and always returns
    /// a valid index.
    #[test]
    fn weighted_pick_validity(
        seed in any::<u64>(),
        weights in proptest::collection::vec(0.0f64..10.0, 1..10),
    ) {
        prop_assume!(weights.iter().sum::<f64>() > 0.0);
        let mut rng = Rng::from_seed(seed);
        for _ in 0..50 {
            let i = rng.pick_weighted(&weights);
            prop_assert!(i < weights.len());
            prop_assert!(weights[i] > 0.0, "picked zero-weight index {i}");
        }
    }

    /// Normal sampling is symmetric-ish around its mean (loose bound).
    #[test]
    fn normal_centering(seed in any::<u64>(), mean in -100.0f64..100.0, sd in 0.1f64..10.0) {
        let mut rng = Rng::from_seed(seed);
        let d = Normal::new(mean, sd);
        let n = 2000;
        let avg: f64 = (0..n).map(|_| d.sample(&mut rng)).sum::<f64>() / n as f64;
        prop_assert!((avg - mean).abs() < 5.0 * sd / (n as f64).sqrt() + 1e-9,
            "avg {avg} vs mean {mean}");
    }
}

//! # bce-fleet — cross-host resource-share enforcement
//!
//! Implements the §6.2 future-work proposal: "increase system throughput
//! by enforcing resource share across a volunteer's hosts, rather than for
//! each host separately." A volunteer's fleet of heterogeneous hosts is
//! described once; share-assignment strategies derive per-host share
//! vectors (possibly detaching projects from unsuitable hosts); each host
//! runs a full BCE emulation; fleet-level share violation and throughput
//! are compared between the per-host baseline and the cross-host
//! assignment.

pub mod alloc;
pub mod fleet;
pub mod study;

pub use alloc::{fair_alloc, Consumer, Device, FairAlloc};
pub use fleet::{assign_shares, host_scenarios, Fleet, FleetHost, ShareAssignment, ShareStrategy};
pub use study::{run_fleet, FleetResult};

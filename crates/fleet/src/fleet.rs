//! A volunteer's fleet of hosts and the share-assignment strategies.
//!
//! §6.2: "Increase system throughput by enforcing resource share across a
//! volunteer's hosts, rather than for each host separately. For example,
//! if a particular host is well-suited to a particular project, it could
//! run only that project, and the difference could be made up on other
//! hosts."

use crate::alloc::{fair_alloc, Consumer, Device};
use bce_avail::AvailSpec;
use bce_core::{Scenario, ScenarioBuilder};
use bce_types::{Hardware, Preferences, ProcType, ProjectId, ProjectSpec};

/// One host in the volunteer's fleet (projects are fleet-level).
#[derive(Debug, Clone)]
pub struct FleetHost {
    pub name: String,
    pub hardware: Hardware,
    pub prefs: Preferences,
    pub avail: AvailSpec,
}

impl FleetHost {
    pub fn new(name: impl Into<String>, hardware: Hardware) -> Self {
        FleetHost {
            name: name.into(),
            hardware,
            prefs: Preferences::default(),
            avail: AvailSpec::always_on(),
        }
    }
}

/// A volunteer: several hosts, one set of projects with fleet-level
/// resource shares.
#[derive(Debug, Clone)]
pub struct Fleet {
    pub hosts: Vec<FleetHost>,
    pub projects: Vec<ProjectSpec>,
    pub seed: u64,
}

/// How per-host shares are derived from the volunteer's shares.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShareStrategy {
    /// The baseline BOINC behaviour: every host applies the volunteer's
    /// shares independently.
    PerHost,
    /// The §6.2 proposal: shares are assigned per host so that hosts
    /// specialize in the projects they suit, while the fleet-level totals
    /// track the volunteer's shares.
    CrossHost,
}

impl ShareStrategy {
    pub fn name(&self) -> &'static str {
        match self {
            ShareStrategy::PerHost => "per-host",
            ShareStrategy::CrossHost => "cross-host",
        }
    }
}

/// Per-host share vectors: `assignment[host]` lists `(project, share)`;
/// projects absent from a host's vector are detached there.
pub type ShareAssignment = Vec<Vec<(ProjectId, f64)>>;

/// Whether `project` can use any processor of `hw`.
fn project_fits(project: &ProjectSpec, hw: &Hardware) -> bool {
    project.apps.iter().any(|a| {
        let t = a.usage.main_proc_type();
        hw.ninstances(t) > 0
    })
}

/// Compute the share assignment for a strategy.
pub fn assign_shares(fleet: &Fleet, strategy: ShareStrategy) -> ShareAssignment {
    match strategy {
        ShareStrategy::PerHost => fleet
            .hosts
            .iter()
            .map(|h| {
                fleet
                    .projects
                    .iter()
                    .filter(|p| project_fits(p, &h.hardware))
                    .map(|p| (p.id, p.resource_share))
                    .collect()
            })
            .collect(),
        ShareStrategy::CrossHost => {
            // Devices: every (host, type) pool; consumers: projects.
            let mut devices = Vec::new();
            let mut device_host = Vec::new();
            for (hi, host) in fleet.hosts.iter().enumerate() {
                for t in ProcType::ALL {
                    let cap = host.hardware.peak_flops(t);
                    if cap <= 0.0 {
                        continue;
                    }
                    let usable_by = fleet
                        .projects
                        .iter()
                        .enumerate()
                        .filter(|(_, p)| p.has_apps_for(t))
                        .map(|(ci, _)| ci)
                        .collect();
                    devices.push(Device { capacity: cap, usable_by });
                    device_host.push(hi);
                }
            }
            let consumers: Vec<Consumer> =
                fleet.projects.iter().map(|p| Consumer { share: p.resource_share }).collect();
            let alloc = fair_alloc(&devices, &consumers, 32);

            // Translate per-(host,device) FLOPS into per-host share
            // weights: a project's share on a host is proportional to the
            // FLOPS it should receive there.
            (0..fleet.hosts.len())
                .map(|hi| {
                    let mut shares = Vec::new();
                    for (ci, p) in fleet.projects.iter().enumerate() {
                        let flops: f64 = devices
                            .iter()
                            .enumerate()
                            .filter(|(di, _)| device_host[*di] == hi)
                            .map(|(di, _)| alloc.alloc[ci][di])
                            .sum();
                        if flops > 1e-6 {
                            shares.push((p.id, flops));
                        }
                    }
                    shares
                })
                .collect()
        }
    }
}

/// Build the per-host scenario for an assignment (hosts with an empty
/// share vector get a scenario with no projects and are skipped by the
/// runner).
pub fn host_scenarios(fleet: &Fleet, assignment: &ShareAssignment) -> Vec<Scenario> {
    fleet
        .hosts
        .iter()
        .zip(assignment)
        .enumerate()
        .map(|(hi, (host, shares))| {
            let mut b = ScenarioBuilder::new(format!("fleet-{}", host.name), host.hardware.clone())
                .seed(fleet.seed ^ (hi as u64).wrapping_mul(0x9E3779B97F4A7C15))
                .prefs(host.prefs.clone())
                .avail(host.avail.clone());
            for (pid, share) in shares {
                if let Some(spec) = fleet.projects.iter().find(|p| p.id == *pid) {
                    // Keep only apps the host can run (a GPU app on a
                    // CPU-only host would fail validation).
                    let mut spec = spec.clone();
                    spec.resource_share = *share;
                    spec.apps.retain(|a| host.hardware.ninstances(a.usage.main_proc_type()) > 0);
                    if !spec.apps.is_empty() {
                        b = b.project(spec);
                    }
                }
            }
            b.build_unchecked()
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use bce_types::{AppClass, SimDuration};

    fn gpu_project() -> ProjectSpec {
        ProjectSpec::new(0, "gpu_proj", 100.0).with_app(AppClass::gpu(
            0,
            ProcType::NvidiaGpu,
            SimDuration::from_secs(1000.0),
            SimDuration::from_hours(24.0),
        ))
    }

    fn cpu_project() -> ProjectSpec {
        ProjectSpec::new(1, "cpu_proj", 100.0).with_app(AppClass::cpu(
            1,
            SimDuration::from_secs(1000.0),
            SimDuration::from_hours(24.0),
        ))
    }

    fn heterogeneous_fleet() -> Fleet {
        Fleet {
            hosts: vec![
                FleetHost::new("cpu-box", Hardware::cpu_only(4, 2e9)),
                FleetHost::new(
                    "gpu-box",
                    Hardware::cpu_only(2, 1e9).with_group(ProcType::NvidiaGpu, 1, 2e10),
                ),
            ],
            projects: vec![gpu_project(), cpu_project()],
            seed: 7,
        }
    }

    #[test]
    fn per_host_drops_unusable_projects() {
        let fleet = heterogeneous_fleet();
        let a = assign_shares(&fleet, ShareStrategy::PerHost);
        // CPU-only host can't serve the GPU project.
        assert_eq!(a[0], vec![(ProjectId(1), 100.0)]);
        // GPU host serves both at the volunteer's shares.
        assert_eq!(a[1].len(), 2);
    }

    #[test]
    fn cross_host_specializes() {
        let fleet = heterogeneous_fleet();
        let a = assign_shares(&fleet, ShareStrategy::CrossHost);
        // The GPU host's share vector must heavily favour the GPU
        // project (it's the only place GPU work can run, and the CPU box
        // covers the CPU project's entitlement).
        let gpu_host = &a[1];
        let gpu_share =
            gpu_host.iter().find(|(p, _)| *p == ProjectId(0)).map(|(_, s)| *s).unwrap_or(0.0);
        let cpu_share =
            gpu_host.iter().find(|(p, _)| *p == ProjectId(1)).map(|(_, s)| *s).unwrap_or(0.0);
        assert!(
            gpu_share > 3.0 * cpu_share,
            "gpu host should specialize: gpu {gpu_share} vs cpu {cpu_share}"
        );
        // The CPU box runs only the CPU project.
        let cpu_host = &a[0];
        assert!(cpu_host.iter().all(|(p, _)| *p == ProjectId(1)));
    }

    #[test]
    fn host_scenarios_validate() {
        let fleet = heterogeneous_fleet();
        for strategy in [ShareStrategy::PerHost, ShareStrategy::CrossHost] {
            let a = assign_shares(&fleet, strategy);
            for s in host_scenarios(&fleet, &a) {
                assert!(s.validate().is_ok(), "{strategy:?}/{}: {:?}", s.name, s.validate());
            }
        }
    }

    #[test]
    fn per_host_seeds_differ_between_hosts() {
        let fleet = heterogeneous_fleet();
        let a = assign_shares(&fleet, ShareStrategy::PerHost);
        let scenarios = host_scenarios(&fleet, &a);
        assert_ne!(scenarios[0].seed, scenarios[1].seed);
    }
}

//! Deficit-proportional water-filling over an arbitrary device list.
//!
//! The cross-host strategy needs a fair allocation where the "devices" are
//! every (host, processor-type) pair in the volunteer's fleet — too many
//! for the exact 3-device polymatroid solver in `bce-types::share`. This
//! iterative scheme converges to (approximate) weighted max-min fairness:
//! each round, every device splits its remaining capacity among the
//! projects that can use it in proportion to their remaining *deficit*
//! (share-entitled FLOPS not yet covered); leftovers beyond everyone's
//! entitlement are handed out share-proportionally so no usable device
//! idles.

/// One capacity pool (a (host, type) pair in fleet use).
#[derive(Debug, Clone)]
pub struct Device {
    pub capacity: f64,
    /// Which consumers can draw from this device.
    pub usable_by: Vec<usize>,
}

/// A consumer (a project) with a relative share weight.
#[derive(Debug, Clone, Copy)]
pub struct Consumer {
    pub share: f64,
}

/// Result: `alloc[consumer][device]` plus capacity nobody could use.
#[derive(Debug, Clone)]
pub struct FairAlloc {
    pub alloc: Vec<Vec<f64>>,
    pub unusable: f64,
}

impl FairAlloc {
    pub fn total_for(&self, consumer: usize) -> f64 {
        self.alloc[consumer].iter().sum()
    }

    pub fn device_total(&self, device: usize) -> f64 {
        self.alloc.iter().map(|row| row[device]).sum()
    }
}

/// Compute the allocation. `rounds` bounds the water-filling iterations
/// (16 is plenty: the deficit shrinks geometrically).
///
/// ```
/// use bce_fleet::{fair_alloc, Consumer, Device};
/// // One device both consumers share, 3:1 weights.
/// let devices = [Device { capacity: 100.0, usable_by: vec![0, 1] }];
/// let consumers = [Consumer { share: 3.0 }, Consumer { share: 1.0 }];
/// let a = fair_alloc(&devices, &consumers, 16);
/// assert!((a.total_for(0) - 75.0).abs() < 1e-6);
/// assert!((a.total_for(1) - 25.0).abs() < 1e-6);
/// ```
pub fn fair_alloc(devices: &[Device], consumers: &[Consumer], rounds: usize) -> FairAlloc {
    let nd = devices.len();
    let nc = consumers.len();
    let mut alloc = vec![vec![0.0f64; nd]; nc];
    let mut remaining: Vec<f64> = devices.iter().map(|d| d.capacity).collect();

    let share_sum: f64 = consumers.iter().map(|c| c.share.max(0.0)).sum();
    let total_cap: f64 = devices.iter().map(|d| d.capacity).sum();
    let targets: Vec<f64> = consumers
        .iter()
        .map(|c| if share_sum > 0.0 { c.share.max(0.0) / share_sum * total_cap } else { 0.0 })
        .collect();

    // Phase 1: deficit-proportional filling toward the entitlement
    // targets. Devices are processed most-constrained first (fewest
    // usable consumers) and deficits update after *every* device, so a
    // consumer already satisfied by a dedicated device does not also
    // claim shared capacity that others need.
    let mut deficits: Vec<f64> = targets.clone();
    let mut order: Vec<usize> = (0..nd).collect();
    order.sort_by_key(|&d| devices[d].usable_by.len());
    for _ in 0..rounds {
        let mut moved = 0.0;
        for &d in &order {
            let dev = &devices[d];
            if remaining[d] <= 1e-9 {
                continue;
            }
            let dsum: f64 = dev.usable_by.iter().map(|&c| deficits[c]).sum();
            if dsum <= 1e-9 {
                continue;
            }
            // Cap each grant at the consumer's deficit; surplus stays on
            // the device for the next round.
            let mut given_total = 0.0;
            for &c in &dev.usable_by {
                let give = (remaining[d] * deficits[c] / dsum).min(deficits[c]);
                alloc[c][d] += give;
                deficits[c] -= give;
                given_total += give;
            }
            remaining[d] -= given_total;
            moved += given_total;
        }
        if moved <= 1e-9 * total_cap.max(1.0) {
            break;
        }
    }

    // Phase 2: leftovers beyond entitlements, share-proportional, so
    // usable capacity never idles.
    for (d, dev) in devices.iter().enumerate() {
        if remaining[d] <= 1e-9 {
            continue;
        }
        let wsum: f64 = dev.usable_by.iter().map(|&c| consumers[c].share.max(0.0)).sum();
        if wsum <= 0.0 {
            continue;
        }
        let cap = remaining[d];
        for &c in &dev.usable_by {
            alloc[c][d] += cap * consumers[c].share.max(0.0) / wsum;
        }
        remaining[d] = 0.0;
    }

    FairAlloc { alloc, unusable: remaining.iter().sum() }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_device_splits_by_share() {
        let devices = [Device { capacity: 100.0, usable_by: vec![0, 1] }];
        let consumers = [Consumer { share: 3.0 }, Consumer { share: 1.0 }];
        let a = fair_alloc(&devices, &consumers, 16);
        assert!((a.total_for(0) - 75.0).abs() < 1e-6);
        assert!((a.total_for(1) - 25.0).abs() < 1e-6);
        assert!(a.unusable < 1e-9);
    }

    #[test]
    fn figure1_shape_generalizes() {
        // CPU(10) usable by A; GPU(20) usable by A and B; equal shares.
        let devices = [
            Device { capacity: 10.0, usable_by: vec![0] },
            Device { capacity: 20.0, usable_by: vec![0, 1] },
        ];
        let consumers = [Consumer { share: 1.0 }, Consumer { share: 1.0 }];
        let a = fair_alloc(&devices, &consumers, 32);
        assert!((a.total_for(0) - 15.0).abs() < 0.1, "A got {}", a.total_for(0));
        assert!((a.total_for(1) - 15.0).abs() < 0.1, "B got {}", a.total_for(1));
    }

    #[test]
    fn constrained_consumer_capped_leftover_flows() {
        // Consumer 0 can only use a small device; its unmet entitlement
        // flows to consumer 1 on the big device.
        let devices = [
            Device { capacity: 10.0, usable_by: vec![0] },
            Device { capacity: 90.0, usable_by: vec![1] },
        ];
        let consumers = [Consumer { share: 1.0 }, Consumer { share: 1.0 }];
        let a = fair_alloc(&devices, &consumers, 16);
        assert!((a.total_for(0) - 10.0).abs() < 1e-6);
        assert!((a.total_for(1) - 90.0).abs() < 1e-6);
    }

    #[test]
    fn unusable_capacity_reported() {
        let devices = [
            Device { capacity: 50.0, usable_by: vec![0] },
            Device { capacity: 30.0, usable_by: vec![] },
        ];
        let consumers = [Consumer { share: 1.0 }];
        let a = fair_alloc(&devices, &consumers, 16);
        assert!((a.total_for(0) - 50.0).abs() < 1e-6);
        assert!((a.unusable - 30.0).abs() < 1e-6);
    }

    #[test]
    fn conservation() {
        let devices = [
            Device { capacity: 13.0, usable_by: vec![0, 2] },
            Device { capacity: 7.0, usable_by: vec![1] },
            Device { capacity: 25.0, usable_by: vec![0, 1, 2] },
        ];
        let consumers = [Consumer { share: 2.0 }, Consumer { share: 5.0 }, Consumer { share: 1.0 }];
        let a = fair_alloc(&devices, &consumers, 16);
        let total: f64 = (0..3).map(|c| a.total_for(c)).sum();
        assert!((total + a.unusable - 45.0).abs() < 1e-6);
        for (d, dev) in devices.iter().enumerate() {
            assert!(a.device_total(d) <= dev.capacity + 1e-9);
        }
    }

    #[test]
    fn zero_share_consumer_starves() {
        let devices = [Device { capacity: 10.0, usable_by: vec![0, 1] }];
        let consumers = [Consumer { share: 0.0 }, Consumer { share: 1.0 }];
        let a = fair_alloc(&devices, &consumers, 16);
        assert!(a.total_for(0) < 1e-9);
        assert!((a.total_for(1) - 10.0).abs() < 1e-6);
    }
}

//! Running a fleet under a share strategy and scoring the volunteer-level
//! outcome: fleet share violation (did the volunteer's intent hold across
//! all their machines?) and total throughput.

use crate::fleet::{assign_shares, host_scenarios, Fleet, ShareStrategy};
use bce_client::ClientConfig;
use bce_controller::{run_all, RunSpec};
use bce_core::{EmulationResult, EmulatorConfig};
use bce_sim::rms;
use bce_types::ProjectId;

/// Fleet-level outcome of one strategy.
#[derive(Debug, Clone)]
pub struct FleetResult {
    pub strategy: ShareStrategy,
    pub per_host: Vec<(String, EmulationResult)>,
    /// FLOPS delivered to each project across the whole fleet.
    pub per_project_flops: Vec<(ProjectId, f64)>,
    /// RMS deviation between volunteer share fractions and delivered
    /// fractions, fleet-wide.
    pub fleet_share_violation: f64,
    /// Total FLOPS delivered.
    pub total_flops: f64,
}

/// Emulate every host of the fleet under `strategy`.
pub fn run_fleet(
    fleet: &Fleet,
    strategy: ShareStrategy,
    client: ClientConfig,
    emulator: &EmulatorConfig,
    threads: usize,
) -> FleetResult {
    let assignment = assign_shares(fleet, strategy);
    let scenarios = host_scenarios(fleet, &assignment);
    // One shared emulator config for every host; host scenarios are moved
    // into their Arc, so nothing is cloned per spec.
    let emulator = std::sync::Arc::new(emulator.clone());
    let specs: Vec<RunSpec> = scenarios
        .into_iter()
        .filter(|s| !s.projects.is_empty())
        .map(|s| RunSpec::new(s.name.clone(), s, client).with_emulator(emulator.clone()))
        .collect();
    let per_host = run_all(specs, threads);

    // Aggregate FLOPS per project across hosts.
    let mut per_project_flops: Vec<(ProjectId, f64)> =
        fleet.projects.iter().map(|p| (p.id, 0.0)).collect();
    for (_, result) in &per_host {
        for pr in &result.projects {
            if let Some((_, acc)) = per_project_flops.iter_mut().find(|(id, _)| *id == pr.id) {
                *acc += pr.flops_used;
            }
        }
    }
    let total_flops: f64 = per_project_flops.iter().map(|(_, f)| f).sum();

    let share_sum: f64 = fleet.projects.iter().map(|p| p.resource_share).sum();
    let deviations: Vec<f64> = fleet
        .projects
        .iter()
        .map(|p| {
            let share_frac = if share_sum > 0.0 { p.resource_share / share_sum } else { 0.0 };
            let used = per_project_flops
                .iter()
                .find(|(id, _)| *id == p.id)
                .map(|(_, f)| *f)
                .unwrap_or(0.0);
            let used_frac = if total_flops > 0.0 { used / total_flops } else { 0.0 };
            share_frac - used_frac
        })
        .collect();

    FleetResult {
        strategy,
        per_host,
        per_project_flops,
        fleet_share_violation: rms(&deviations),
        total_flops,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fleet::FleetHost;
    use bce_types::{AppClass, Hardware, ProcType, ProjectSpec, SimDuration};

    fn fleet() -> Fleet {
        // The §6.2 situation: the "mixed" project has both CPU and GPU
        // apps, so under per-host enforcement it claims half of the CPU
        // box *and* the whole GPU — overshooting its fleet-level share.
        // Cross-host assignment dedicates the CPU box to the CPU-only
        // project instead.
        Fleet {
            hosts: vec![
                FleetHost::new("cpu-box", Hardware::cpu_only(8, 2e9)),
                FleetHost::new(
                    "gpu-box",
                    Hardware::cpu_only(2, 1e9).with_group(ProcType::NvidiaGpu, 1, 2e10),
                ),
            ],
            projects: vec![
                ProjectSpec::new(0, "mixed_proj", 100.0)
                    .with_app(AppClass::gpu(
                        0,
                        ProcType::NvidiaGpu,
                        SimDuration::from_secs(1000.0),
                        SimDuration::from_hours(24.0),
                    ))
                    .with_app(AppClass::cpu(
                        1,
                        SimDuration::from_secs(2000.0),
                        SimDuration::from_hours(24.0),
                    )),
                ProjectSpec::new(1, "cpu_proj", 100.0).with_app(AppClass::cpu(
                    2,
                    SimDuration::from_secs(1000.0),
                    SimDuration::from_hours(24.0),
                )),
            ],
            seed: 3,
        }
    }

    fn emu() -> EmulatorConfig {
        EmulatorConfig { duration: SimDuration::from_hours(6.0), ..Default::default() }
    }

    #[test]
    fn cross_host_beats_per_host_on_fleet_violation() {
        let f = fleet();
        let per = run_fleet(&f, ShareStrategy::PerHost, ClientConfig::default(), &emu(), 0);
        let cross = run_fleet(&f, ShareStrategy::CrossHost, ClientConfig::default(), &emu(), 0);
        // Both run all hosts and deliver work.
        assert_eq!(per.per_host.len(), 2);
        assert_eq!(cross.per_host.len(), 2);
        assert!(per.total_flops > 0.0 && cross.total_flops > 0.0);
        // The headline §6.2 claim: cross-host assignment tracks the
        // volunteer's shares better without losing throughput.
        assert!(
            cross.fleet_share_violation < per.fleet_share_violation,
            "cross {:.4} vs per {:.4}",
            cross.fleet_share_violation,
            per.fleet_share_violation
        );
        assert!(
            cross.total_flops > 0.9 * per.total_flops,
            "throughput must not collapse: {:.3e} vs {:.3e}",
            cross.total_flops,
            per.total_flops
        );
    }

    #[test]
    fn results_are_deterministic() {
        let f = fleet();
        let a = run_fleet(&f, ShareStrategy::CrossHost, ClientConfig::default(), &emu(), 0);
        let b = run_fleet(&f, ShareStrategy::CrossHost, ClientConfig::default(), &emu(), 0);
        assert_eq!(a.total_flops.to_bits(), b.total_flops.to_bits());
        assert_eq!(a.fleet_share_violation.to_bits(), b.fleet_share_violation.to_bits());
    }

    #[test]
    fn bit_identical_across_thread_counts() {
        let f = fleet();
        let base = run_fleet(&f, ShareStrategy::PerHost, ClientConfig::default(), &emu(), 1);
        for threads in [2, 8] {
            let other =
                run_fleet(&f, ShareStrategy::PerHost, ClientConfig::default(), &emu(), threads);
            assert_eq!(base.total_flops.to_bits(), other.total_flops.to_bits());
            assert_eq!(base.fleet_share_violation.to_bits(), other.fleet_share_violation.to_bits());
            for ((na, ra), (nb, rb)) in base.per_host.iter().zip(&other.per_host) {
                assert_eq!(na, nb);
                assert_eq!(
                    ra.bit_fingerprint(),
                    rb.bit_fingerprint(),
                    "host {na} diverged at {threads} threads"
                );
            }
        }
    }
}

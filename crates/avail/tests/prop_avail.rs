//! Property tests for availability modelling.

use bce_avail::{AvailTrace, OnOffSpec};
use bce_sim::Rng;
use bce_types::{SimDuration, SimTime};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig { cases: 128 })]

    /// Traces round-trip through the text format.
    #[test]
    fn trace_roundtrip(transitions in proptest::collection::vec((0.0f64..1e6, any::<bool>()), 0..50)) {
        let mut ts: Vec<(f64, bool)> = transitions;
        ts.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
        let trace = AvailTrace::new(
            true,
            ts.iter().map(|&(t, s)| (SimTime::from_secs(t), s)).collect(),
        );
        let rendered = trace.render();
        let parsed = AvailTrace::parse(&rendered).unwrap();
        // State agrees everywhere after the first transition (the initial
        // state is only recoverable when a t=0 transition pins it).
        for &(t, _) in &ts {
            prop_assert_eq!(
                parsed.state_at(SimTime::from_secs(t + 0.25)),
                trace.state_at(SimTime::from_secs(t + 0.25))
            );
        }
    }

    /// On/off processes alternate strictly and times are monotone.
    #[test]
    fn process_alternates(seed in any::<u64>(), up in 1.0f64..1e4, down in 1.0f64..1e4) {
        let spec = OnOffSpec::Exponential {
            up_mean: SimDuration::from_secs(up),
            down_mean: SimDuration::from_secs(down),
            start_on: true,
        };
        let mut p = spec.instantiate(Rng::from_seed(seed));
        let mut prev_t = SimTime::ZERO;
        let mut prev_state = p.state();
        for _ in 0..50 {
            let t = p.next_transition();
            prop_assert!(t > prev_t);
            p.advance(t);
            prop_assert_ne!(p.state(), prev_state);
            prev_t = t;
            prev_state = p.state();
        }
    }

    /// Long-run on-fraction approaches the duty cycle.
    #[test]
    fn duty_cycle_converges(seed in any::<u64>(), frac in 0.1f64..0.9) {
        let spec = OnOffSpec::duty_cycle(frac, SimDuration::from_secs(1000.0));
        let mut p = spec.instantiate(Rng::from_seed(seed));
        let horizon = 2e6;
        let mut on = 0.0;
        let mut now = SimTime::ZERO;
        while now.secs() < horizon {
            let next = p.next_transition().min(SimTime::from_secs(horizon));
            if p.state() {
                on += (next - now).secs();
            }
            now = next;
            p.advance(now);
        }
        let measured = on / horizon;
        // 2000 expected cycles: generous tolerance.
        prop_assert!((measured - frac).abs() < 0.08, "measured {measured} vs {frac}");
    }
}

//! Recorded availability traces.
//!
//! §3.4 notes that queue parameters "could be derived from availability
//! traces"; traces also let BCE replay a specific volunteer's observed
//! availability pattern instead of a random process. The format is one
//! transition per line: `<time-secs> <0|1>`, sorted by time, giving the
//! state *from* that instant onward.

use bce_types::SimTime;
use std::fmt::Write as _;

/// A deterministic availability history.
#[derive(Debug, Clone, PartialEq)]
pub struct AvailTrace {
    /// Initial state before the first transition.
    initial: bool,
    /// Sorted transition instants with the state that begins there.
    transitions: Vec<(SimTime, bool)>,
}

/// Error from [`AvailTrace::parse`].
#[derive(Debug, Clone, PartialEq)]
pub struct TraceParseError {
    pub line: usize,
    pub message: String,
}

impl std::fmt::Display for TraceParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "trace parse error at line {}: {}", self.line, self.message)
    }
}
impl std::error::Error for TraceParseError {}

impl AvailTrace {
    pub fn new(initial: bool, transitions: Vec<(SimTime, bool)>) -> Self {
        debug_assert!(transitions.windows(2).all(|w| w[0].0 <= w[1].0), "trace must be sorted");
        AvailTrace { initial, transitions }
    }

    /// Parse the `t state` line format. Blank lines and `#` comments are
    /// ignored. The initial state defaults to on unless the first
    /// transition is at t=0.
    pub fn parse(text: &str) -> Result<Self, TraceParseError> {
        let mut transitions = Vec::new();
        let mut last_t = f64::NEG_INFINITY;
        for (i, line) in text.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let mut parts = line.split_whitespace();
            let err = |m: &str| TraceParseError { line: i + 1, message: m.to_string() };
            let t: f64 = parts
                .next()
                .ok_or_else(|| err("missing time"))?
                .parse()
                .map_err(|_| err("bad time"))?;
            let s = match parts.next().ok_or_else(|| err("missing state"))? {
                "0" => false,
                "1" => true,
                other => return Err(err(&format!("bad state {other:?} (want 0 or 1)"))),
            };
            if parts.next().is_some() {
                return Err(err("trailing fields"));
            }
            if t < last_t {
                return Err(err("times must be non-decreasing"));
            }
            last_t = t;
            transitions.push((SimTime::from_secs(t), s));
        }
        let initial = match transitions.first() {
            Some(&(t, s)) if t == SimTime::ZERO => s,
            _ => true,
        };
        Ok(AvailTrace::new(initial, transitions))
    }

    /// Serialize back to the line format.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for (t, s) in &self.transitions {
            let _ = writeln!(out, "{} {}", t.secs(), if *s { 1 } else { 0 });
        }
        out
    }

    /// State at time `t`.
    pub fn state_at(&self, t: SimTime) -> bool {
        let idx = self.transitions.partition_point(|&(tt, _)| tt <= t);
        if idx == 0 {
            self.initial
        } else {
            self.transitions[idx - 1].1
        }
    }

    /// The next transition strictly after `t`, if any.
    pub fn next_transition_after(&self, t: SimTime) -> Option<SimTime> {
        let idx = self.transitions.partition_point(|&(tt, _)| tt <= t);
        self.transitions.get(idx).map(|&(tt, _)| tt)
    }

    /// Fraction of `[start, end)` in the on state.
    pub fn on_fraction(&self, start: SimTime, end: SimTime) -> f64 {
        if end <= start {
            return 0.0;
        }
        let mut on = 0.0;
        let mut t = start;
        while t < end {
            let next = self.next_transition_after(t).unwrap_or(SimTime::FAR_FUTURE).min(end);
            if self.state_at(t) {
                on += (next - t).secs();
            }
            t = next;
        }
        on / (end - start).secs()
    }

    pub fn transitions(&self) -> &[(SimTime, bool)] {
        &self.transitions
    }

    /// State before the first transition.
    pub fn initial(&self) -> bool {
        self.initial
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: f64) -> SimTime {
        SimTime::from_secs(s)
    }

    #[test]
    fn parse_and_lookup() {
        let tr = AvailTrace::parse("# host 17\n0 1\n100 0\n250 1\n").unwrap();
        assert!(tr.state_at(t(0.0)));
        assert!(tr.state_at(t(99.9)));
        assert!(!tr.state_at(t(100.0)));
        assert!(tr.state_at(t(250.0)));
        assert_eq!(tr.next_transition_after(t(0.0)), Some(t(100.0)));
        assert_eq!(tr.next_transition_after(t(100.0)), Some(t(250.0)));
        assert_eq!(tr.next_transition_after(t(250.0)), None);
    }

    #[test]
    fn initial_state_defaults_on() {
        let tr = AvailTrace::parse("50 0\n").unwrap();
        assert!(tr.state_at(t(10.0)));
        assert!(!tr.state_at(t(60.0)));
    }

    #[test]
    fn parse_errors() {
        assert!(AvailTrace::parse("abc 1").is_err());
        assert!(AvailTrace::parse("10 2").is_err());
        assert!(AvailTrace::parse("10 1 extra").is_err());
        assert!(AvailTrace::parse("10 1\n5 0").is_err());
        assert!(AvailTrace::parse("10").is_err());
        let e = AvailTrace::parse("10 1\n5 0").unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.to_string().contains("line 2"));
    }

    #[test]
    fn empty_trace_is_always_on() {
        let tr = AvailTrace::parse("").unwrap();
        assert!(tr.state_at(t(1e9)));
        assert_eq!(tr.next_transition_after(t(0.0)), None);
    }

    #[test]
    fn on_fraction() {
        let tr = AvailTrace::parse("0 1\n100 0\n200 1\n").unwrap();
        assert!((tr.on_fraction(t(0.0), t(200.0)) - 0.5).abs() < 1e-12);
        assert!((tr.on_fraction(t(0.0), t(400.0)) - 0.75).abs() < 1e-12);
        assert_eq!(tr.on_fraction(t(10.0), t(10.0)), 0.0);
    }

    #[test]
    fn render_roundtrip() {
        let src = "0 1\n100 0\n250 1\n";
        let tr = AvailTrace::parse(src).unwrap();
        let tr2 = AvailTrace::parse(&tr.render()).unwrap();
        assert_eq!(tr, tr2);
    }
}

//! Two-state (on/off) availability processes.
//!
//! §4.3b: "host availability is modeled as a random process in which
//! available and unavailable periods have exponentially distributed
//! lengths." The same machinery also models user activity (for the
//! run-if-user-active preferences), network connectivity, server uptime
//! and work supply.

use bce_sim::{Distribution, Exponential, Rng};
use bce_types::{SimDuration, SimTime};

/// Specification of an on/off process, convertible into a running
/// [`OnOffProcess`] given an RNG stream.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum OnOffSpec {
    /// Permanently on.
    AlwaysOn,
    /// Permanently off.
    AlwaysOff,
    /// Alternating exponential periods.
    Exponential {
        up_mean: SimDuration,
        down_mean: SimDuration,
        /// Start in the on state?
        start_on: bool,
    },
}

impl OnOffSpec {
    /// An exponential process with the given availability fraction and mean
    /// cycle (up + down) length, starting on.
    pub fn duty_cycle(on_fraction: f64, cycle_mean: SimDuration) -> Self {
        debug_assert!((0.0..=1.0).contains(&on_fraction));
        if on_fraction >= 1.0 {
            return OnOffSpec::AlwaysOn;
        }
        if on_fraction <= 0.0 {
            return OnOffSpec::AlwaysOff;
        }
        OnOffSpec::Exponential {
            up_mean: cycle_mean * on_fraction,
            down_mean: cycle_mean * (1.0 - on_fraction),
            start_on: true,
        }
    }

    /// Long-run fraction of time in the on state.
    pub fn on_fraction(&self) -> f64 {
        match *self {
            OnOffSpec::AlwaysOn => 1.0,
            OnOffSpec::AlwaysOff => 0.0,
            OnOffSpec::Exponential { up_mean, down_mean, .. } => {
                up_mean.secs() / (up_mean.secs() + down_mean.secs())
            }
        }
    }

    pub fn instantiate(&self, rng: Rng) -> OnOffProcess {
        OnOffProcess::new(*self, rng)
    }
}

/// A realized on/off process: current state plus the pre-drawn time of the
/// next transition. Transitions are drawn lazily from the process's own RNG
/// stream, so different processes never perturb each other.
#[derive(Debug, Clone)]
pub struct OnOffProcess {
    spec: OnOffSpec,
    rng: Rng,
    state: bool,
    next_transition: SimTime,
}

impl OnOffProcess {
    pub fn new(spec: OnOffSpec, mut rng: Rng) -> Self {
        let (state, next) = match spec {
            OnOffSpec::AlwaysOn => (true, SimTime::FAR_FUTURE),
            OnOffSpec::AlwaysOff => (false, SimTime::FAR_FUTURE),
            OnOffSpec::Exponential { up_mean, down_mean, start_on } => {
                let mean = if start_on { up_mean } else { down_mean };
                let dt = Exponential::new(mean.secs()).sample(&mut rng);
                (start_on, SimTime::ZERO + SimDuration::from_secs(dt))
            }
        };
        OnOffProcess { spec, rng, state, next_transition: next }
    }

    /// Current state (valid for times < `next_transition()`).
    pub fn state(&self) -> bool {
        self.state
    }

    /// When the state will next flip.
    pub fn next_transition(&self) -> SimTime {
        self.next_transition
    }

    /// Advance to `now`, applying any transitions scheduled at or before it.
    /// Returns `true` if the state changed.
    pub fn advance(&mut self, now: SimTime) -> bool {
        let before = self.state;
        while self.next_transition <= now {
            self.state = !self.state;
            let mean = match self.spec {
                OnOffSpec::Exponential { up_mean, down_mean, .. } => {
                    if self.state {
                        up_mean
                    } else {
                        down_mean
                    }
                }
                // AlwaysOn/AlwaysOff never get here (next = FAR_FUTURE).
                _ => unreachable!("transition scheduled for constant process"),
            };
            let dt = Exponential::new(mean.secs()).sample(&mut self.rng);
            self.next_transition += SimDuration::from_secs(dt.max(1e-6));
        }
        self.state != before
    }

    pub fn spec(&self) -> &OnOffSpec {
        &self.spec
    }

    /// Raw mid-run state `(rng, state, next_transition)` for checkpointing.
    pub fn snapshot(&self) -> (Rng, bool, SimTime) {
        (self.rng.clone(), self.state, self.next_transition)
    }

    /// Rebuild a process at an exact position captured by
    /// [`OnOffProcess::snapshot`]. `spec` must be the spec the process was
    /// originally built from, or future transition draws will diverge.
    pub fn from_parts(spec: OnOffSpec, rng: Rng, state: bool, next_transition: SimTime) -> Self {
        OnOffProcess { spec, rng, state, next_transition }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn always_on_never_transitions() {
        let mut p = OnOffSpec::AlwaysOn.instantiate(Rng::from_seed(1));
        assert!(p.state());
        assert_eq!(p.next_transition(), SimTime::FAR_FUTURE);
        assert!(!p.advance(SimTime::from_secs(1e12)));
        assert!(p.state());
    }

    #[test]
    fn always_off() {
        let p = OnOffSpec::AlwaysOff.instantiate(Rng::from_seed(1));
        assert!(!p.state());
        assert_eq!(OnOffSpec::AlwaysOff.on_fraction(), 0.0);
    }

    #[test]
    fn duty_cycle_fraction() {
        let s = OnOffSpec::duty_cycle(0.25, SimDuration::from_hours(4.0));
        assert!((s.on_fraction() - 0.25).abs() < 1e-12);
        match s {
            OnOffSpec::Exponential { up_mean, down_mean, .. } => {
                assert!((up_mean.secs() - 3600.0).abs() < 1e-9);
                assert!((down_mean.secs() - 3.0 * 3600.0).abs() < 1e-9);
            }
            _ => panic!("expected exponential"),
        }
        assert_eq!(OnOffSpec::duty_cycle(1.0, SimDuration::from_hours(1.0)), OnOffSpec::AlwaysOn);
        assert_eq!(OnOffSpec::duty_cycle(0.0, SimDuration::from_hours(1.0)), OnOffSpec::AlwaysOff);
    }

    #[test]
    fn transitions_alternate() {
        let spec = OnOffSpec::Exponential {
            up_mean: SimDuration::from_secs(100.0),
            down_mean: SimDuration::from_secs(100.0),
            start_on: true,
        };
        let mut p = spec.instantiate(Rng::from_seed(2));
        let mut prev_state = p.state();
        let mut transitions = 0;
        let mut t = SimTime::ZERO;
        for _ in 0..100 {
            t = p.next_transition();
            p.advance(t);
            assert_ne!(p.state(), prev_state);
            prev_state = p.state();
            transitions += 1;
        }
        assert_eq!(transitions, 100);
        assert!(t.secs() > 0.0);
    }

    #[test]
    fn long_run_fraction_matches_duty_cycle() {
        let spec = OnOffSpec::duty_cycle(0.7, SimDuration::from_secs(2000.0));
        let mut p = spec.instantiate(Rng::from_seed(3));
        let mut on_time = 0.0;
        let mut now = SimTime::ZERO;
        let end = SimTime::from_secs(3e7);
        while now < end {
            let next = p.next_transition().min(end);
            if p.state() {
                on_time += (next - now).secs();
            }
            now = next;
            p.advance(now);
        }
        let frac = on_time / 3e7;
        assert!((frac - 0.7).abs() < 0.02, "fraction {frac}");
    }

    #[test]
    fn advance_is_idempotent_between_transitions() {
        let spec = OnOffSpec::duty_cycle(0.5, SimDuration::from_secs(100.0));
        let mut p = spec.instantiate(Rng::from_seed(4));
        let mid = SimTime::from_secs(p.next_transition().secs() / 2.0);
        let next_before = p.next_transition();
        assert!(!p.advance(mid));
        assert_eq!(p.next_transition(), next_before);
    }
}

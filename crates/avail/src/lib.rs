//! # bce-avail — host availability modelling
//!
//! §4.3b of the paper: "host availability is modeled as a random process in
//! which available and unavailable periods have exponentially distributed
//! lengths." This crate provides those on/off processes, recorded-trace
//! replay, and the governor that combines power, user activity, network
//! connectivity and preferences into the client's effective run state.

pub mod governor;
pub mod process;
pub mod trace;

pub use governor::{AvailSource, AvailSpec, Governor, HostRunState};
pub use process::{OnOffProcess, OnOffSpec};
pub use trace::{AvailTrace, TraceParseError};

//! The availability governor: combines the host power process, user
//! activity, network connectivity and the user's preferences into the
//! client's effective run state (§2.2: "BOINC is able to compute only when
//! a) the computer is powered on and BOINC is running, and b) computing is
//! allowed by the preferences").

use crate::process::{OnOffProcess, OnOffSpec};
use crate::trace::AvailTrace;
use bce_sim::Rng;
use bce_types::{Preferences, SimDuration, SimTime, DAY};

/// One availability signal: either a stochastic process or a replayed
/// trace.
#[derive(Debug, Clone)]
pub enum AvailSource {
    Process(OnOffProcess),
    Trace(AvailTrace),
}

impl AvailSource {
    pub fn state_at(&self, now: SimTime) -> bool {
        match self {
            AvailSource::Process(p) => p.state(),
            AvailSource::Trace(t) => t.state_at(now),
        }
    }

    pub fn next_transition_after(&self, now: SimTime) -> SimTime {
        match self {
            AvailSource::Process(p) => p.next_transition(),
            AvailSource::Trace(t) => t.next_transition_after(now).unwrap_or(SimTime::FAR_FUTURE),
        }
    }

    pub fn advance(&mut self, now: SimTime) {
        if let AvailSource::Process(p) = self {
            p.advance(now);
        }
    }
}

/// Scenario-level description of the three availability signals.
#[derive(Debug, Clone, PartialEq)]
pub struct AvailSpec {
    /// Host powered on and BOINC running.
    pub host: OnOffSpec,
    /// User actively using the computer (affects the *-if-user-active
    /// preferences).
    pub user_active: OnOffSpec,
    /// Network connectivity (gates scheduler RPCs).
    pub network: OnOffSpec,
}

impl AvailSpec {
    pub fn always_on() -> Self {
        AvailSpec {
            host: OnOffSpec::AlwaysOn,
            user_active: OnOffSpec::AlwaysOff,
            network: OnOffSpec::AlwaysOn,
        }
    }

    pub fn instantiate(&self, rng: &mut Rng) -> Governor {
        Governor::new(
            AvailSource::Process(self.host.instantiate(rng.fork("host"))),
            AvailSource::Process(self.user_active.instantiate(rng.fork("user"))),
            AvailSource::Process(self.network.instantiate(rng.fork("net"))),
        )
    }
}

/// The client's effective run state at an instant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HostRunState {
    /// CPU computing allowed.
    pub can_compute: bool,
    /// GPU computing allowed (implies nothing about `can_compute`; BOINC
    /// suspends GPUs separately).
    pub can_gpu: bool,
    /// Network reachable (scheduler RPCs possible).
    pub net_up: bool,
    /// User currently at the computer (drives the busy/idle RAM limits).
    pub user_active: bool,
}

impl HostRunState {
    pub const OFF: HostRunState =
        HostRunState { can_compute: false, can_gpu: false, net_up: false, user_active: false };
}

/// Tracks the availability signals and evaluates preference rules.
#[derive(Debug, Clone)]
pub struct Governor {
    host: AvailSource,
    user: AvailSource,
    net: AvailSource,
}

impl Governor {
    pub fn new(host: AvailSource, user: AvailSource, net: AvailSource) -> Self {
        Governor { host, user, net }
    }

    /// Replace the host-power signal with a recorded trace.
    pub fn with_host_trace(mut self, trace: AvailTrace) -> Self {
        self.host = AvailSource::Trace(trace);
        self
    }

    /// The three availability signals `(host, user, net)`, exposed so a
    /// checkpoint can capture each process's mid-run state.
    pub fn sources(&self) -> (&AvailSource, &AvailSource, &AvailSource) {
        (&self.host, &self.user, &self.net)
    }

    /// Mutable access to the signals, for checkpoint restore.
    pub fn sources_mut(&mut self) -> (&mut AvailSource, &mut AvailSource, &mut AvailSource) {
        (&mut self.host, &mut self.user, &mut self.net)
    }

    /// Apply transitions at or before `now`.
    pub fn advance(&mut self, now: SimTime) {
        self.host.advance(now);
        self.user.advance(now);
        self.net.advance(now);
    }

    /// Evaluate the run state at `now` under `prefs`. Call after
    /// [`Governor::advance`].
    pub fn run_state(&self, now: SimTime, prefs: &Preferences) -> HostRunState {
        let powered = self.host.state_at(now);
        let user_active = self.user.state_at(now);
        if !powered {
            return HostRunState { user_active, ..HostRunState::OFF };
        }
        let sec_of_day = now.secs().rem_euclid(DAY);

        let window_ok = prefs.compute_window.is_none_or(|w| w.contains(sec_of_day));
        let can_compute = window_ok && (prefs.run_if_user_active || !user_active);

        let gpu_window_ok = prefs.gpu_window.is_none_or(|w| w.contains(sec_of_day));
        let can_gpu = can_compute && gpu_window_ok && (prefs.gpu_if_user_active || !user_active);

        HostRunState { can_compute, can_gpu, net_up: self.net.state_at(now), user_active }
    }

    /// The earliest future instant at which the run state could change:
    /// the next signal transition or preference-window boundary.
    pub fn next_change_after(&self, now: SimTime, prefs: &Preferences) -> SimTime {
        let mut next = self
            .host
            .next_transition_after(now)
            .min(self.user.next_transition_after(now))
            .min(self.net.next_transition_after(now));
        let sec_of_day = now.secs().rem_euclid(DAY);
        for w in [prefs.compute_window, prefs.gpu_window].into_iter().flatten() {
            next = next.min(now + SimDuration::from_secs(w.next_boundary_after(sec_of_day)));
        }
        next
    }

    /// Long-run fraction of time computing is allowed, used by fetch
    /// policies reasoning about queue sizes (mirrors the client's
    /// "recent-average fraction of time when computing is allowed", §2.2).
    pub fn expected_on_fraction(&self, prefs: &Preferences) -> f64 {
        let host_frac = match &self.host {
            AvailSource::Process(p) => p.spec().on_fraction(),
            AvailSource::Trace(t) => t.on_fraction(SimTime::ZERO, SimTime::from_secs(30.0 * DAY)),
        };
        let user_frac = match &self.user {
            AvailSource::Process(p) => p.spec().on_fraction(),
            AvailSource::Trace(t) => t.on_fraction(SimTime::ZERO, SimTime::from_secs(30.0 * DAY)),
        };
        let pref_frac = if prefs.run_if_user_active { 1.0 } else { 1.0 - user_frac };
        let window_frac = prefs.compute_window.map_or(1.0, |w| w.duty_cycle());
        host_frac * pref_frac * window_frac
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bce_types::DailyWindow;

    fn governor(host: OnOffSpec, user: OnOffSpec, net: OnOffSpec) -> Governor {
        let mut rng = Rng::from_seed(1);
        AvailSpec { host, user_active: user, network: net }.instantiate(&mut rng)
    }

    #[test]
    fn powered_off_means_everything_off() {
        let g = governor(OnOffSpec::AlwaysOff, OnOffSpec::AlwaysOff, OnOffSpec::AlwaysOn);
        let st = g.run_state(SimTime::ZERO, &Preferences::default());
        assert_eq!(st, HostRunState::OFF);
    }

    #[test]
    fn user_active_suspends_gpu_by_default() {
        let g = governor(OnOffSpec::AlwaysOn, OnOffSpec::AlwaysOn, OnOffSpec::AlwaysOn);
        let prefs = Preferences::default(); // run_if_user_active=true, gpu_if_user_active=false
        let st = g.run_state(SimTime::ZERO, &prefs);
        assert!(st.can_compute);
        assert!(!st.can_gpu);
        assert!(st.net_up);
    }

    #[test]
    fn user_active_suspends_cpu_when_pref_off() {
        let g = governor(OnOffSpec::AlwaysOn, OnOffSpec::AlwaysOn, OnOffSpec::AlwaysOn);
        let prefs = Preferences { run_if_user_active: false, ..Default::default() };
        let st = g.run_state(SimTime::ZERO, &prefs);
        assert!(!st.can_compute);
        assert!(!st.can_gpu);
    }

    #[test]
    fn compute_window_gates_computing() {
        let g = governor(OnOffSpec::AlwaysOn, OnOffSpec::AlwaysOff, OnOffSpec::AlwaysOn);
        let prefs =
            Preferences { compute_window: Some(DailyWindow::new(9.0, 17.0)), ..Default::default() };
        let at_8 = g.run_state(SimTime::from_secs(8.0 * 3600.0), &prefs);
        let at_12 = g.run_state(SimTime::from_secs(12.0 * 3600.0), &prefs);
        assert!(!at_8.can_compute);
        assert!(at_12.can_compute);
        // Next change from 08:00 is the 09:00 window opening.
        let next = g.next_change_after(SimTime::from_secs(8.0 * 3600.0), &prefs);
        assert!((next.secs() - 9.0 * 3600.0).abs() < 1e-6);
    }

    #[test]
    fn trace_host_signal() {
        let trace = AvailTrace::parse("0 1\n100 0\n200 1\n").unwrap();
        let g = governor(OnOffSpec::AlwaysOn, OnOffSpec::AlwaysOff, OnOffSpec::AlwaysOn)
            .with_host_trace(trace);
        let prefs = Preferences::default();
        assert!(g.run_state(SimTime::from_secs(50.0), &prefs).can_compute);
        assert!(!g.run_state(SimTime::from_secs(150.0), &prefs).can_compute);
        let next = g.next_change_after(SimTime::from_secs(50.0), &prefs);
        assert_eq!(next, SimTime::from_secs(100.0));
    }

    #[test]
    fn expected_on_fraction_composes() {
        let g = governor(
            OnOffSpec::duty_cycle(0.5, SimDuration::from_hours(2.0)),
            OnOffSpec::AlwaysOff,
            OnOffSpec::AlwaysOn,
        );
        let prefs = Preferences::default();
        assert!((g.expected_on_fraction(&prefs) - 0.5).abs() < 1e-12);
        let prefs_window =
            Preferences { compute_window: Some(DailyWindow::new(0.0, 12.0)), ..Default::default() };
        assert!((g.expected_on_fraction(&prefs_window) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn next_change_never_in_past() {
        let g = governor(
            OnOffSpec::duty_cycle(0.5, SimDuration::from_hours(1.0)),
            OnOffSpec::AlwaysOff,
            OnOffSpec::AlwaysOn,
        );
        let now = SimTime::ZERO;
        assert!(g.next_change_after(now, &Preferences::default()) > now);
    }
}

//! Shared figure runner.
//!
//! All six paper figures live here as functions that render into a
//! `String`; the `fig1`…`fig6` binaries and the `bce fig <n>` subcommand
//! are thin shims over [`run_fig`]. Keeping the bodies in one module
//! removes the copy-pasted option handling the per-figure binaries used
//! to carry and guarantees the CLI and the standalone binaries produce
//! byte-identical output.

use crate::{fetch_policies, sched_policies, FigOpts};
use bce_client::{rr_simulate, ClientConfig, FetchPolicy, JobSchedPolicy, RrJob, RrPlatform};
use bce_controller::{compare_policies, line_chart, save_text, sweep, Metric, Table};
use bce_core::{Emulator, ScenarioBuilder};
use bce_scenarios::{scenario1, scenario2, scenario3, scenario4};
use bce_types::{
    ideal_allocation, AppClass, Hardware, JobId, ProcMap, ProcType, ProjectId, ProjectSpec,
    ShareDemand, SimDuration, SimTime, UsableTypes,
};
use std::fmt::Write;

/// Writing to a `String` cannot fail; this keeps the ported figure
/// bodies as close to their original `println!` form as possible.
macro_rules! outln {
    ($out:expr) => { let _ = writeln!($out); };
    ($out:expr, $($arg:tt)*) => { let _ = writeln!($out, $($arg)*); };
}

/// The default emulated period for figure `n`, matching what each
/// standalone binary passes to [`FigOpts::parse`]. Figure 2 is a
/// workload snapshot (no emulation); figure 6 needs 60 days because a
/// 10-day window cannot hold even one of its 11.6-day jobs.
pub fn default_days(n: u32) -> f64 {
    match n {
        2 => 0.0,
        6 => 60.0,
        _ => 10.0,
    }
}

/// Run figure `n` (1–6) and return its full stdout rendering. JSON
/// side-output (`--json`) is written here too, so callers only print.
pub fn run_fig(n: u32, opts: &FigOpts) -> Result<String, String> {
    if opts.scenario.is_some() && !(3..=6).contains(&n) {
        return Err(format!(
            "figure {n} builds its own workload; --scenario applies to figures 3-6"
        ));
    }
    match n {
        1 => fig1(opts),
        2 => fig2(opts),
        3 => fig3(opts),
        4 => fig4(opts),
        5 => fig5(opts),
        6 => fig6(opts),
        _ => Err(format!("unknown figure {n} (expected 1-6)")),
    }
}

/// The scenario a figure runs on: the `--scenario` override when given,
/// otherwise the figure's builtin.
fn base_scenario(
    opts: &FigOpts,
    builtin: impl FnOnce() -> bce_core::Scenario,
) -> bce_core::Scenario {
    opts.scenario.clone().unwrap_or_else(builtin)
}

/// As [`FigOpts::write_json`], but appending the confirmation line to
/// `out` (so it lands in order, after the figure body) and reporting
/// failure as an error instead of exiting the process.
fn write_json_into(
    out: &mut String,
    opts: &FigOpts,
    tables: &[(&str, &Table)],
) -> Result<(), String> {
    let Some(path) = &opts.json else { return Ok(()) };
    match save_text(path, &FigOpts::tables_json(tables)) {
        Ok(()) => {
            outln!(out, "wrote {}", path.display());
            Ok(())
        }
        Err(e) => Err(format!("cannot write {}: {e}", path.display())),
    }
}

fn fig1(opts: &FigOpts) -> Result<String, String> {
    let mut out = String::new();
    let hw = Hardware::cpu_only(1, 10e9).with_group(ProcType::NvidiaGpu, 1, 20e9);

    // --- Closed form (the figure itself). ---
    let demands = [
        ShareDemand {
            id: ProjectId(0),
            share: 1.0,
            usable: UsableTypes::of(&[ProcType::Cpu, ProcType::NvidiaGpu]),
        },
        ShareDemand {
            id: ProjectId(1),
            share: 1.0,
            usable: UsableTypes::only(ProcType::NvidiaGpu),
        },
    ];
    let alloc = ideal_allocation(&hw, &demands);

    outln!(out, "Figure 1 — resource share applies to combined processing resources");
    outln!(
        out,
        "host: 10 GFLOPS CPU + 20 GFLOPS GPU; equal shares; A: CPU+GPU apps, B: GPU only\n"
    );
    let mut t = Table::new(&["project", "CPU GFLOPS", "GPU GFLOPS", "total GFLOPS"]);
    for (name, id) in [("A", ProjectId(0)), ("B", ProjectId(1))] {
        let split = alloc.device_split(id).expect("allocated");
        t.row(&[
            name.to_string(),
            format!("{:.1}", split[ProcType::Cpu] / 1e9),
            format!("{:.1}", split[ProcType::NvidiaGpu] / 1e9),
            format!("{:.1}", alloc.total_for(id) / 1e9),
        ]);
    }
    let table = t.render();
    outln!(out, "{table}");
    outln!(out, "paper: A = 10 CPU + 5 GPU = 15 GFLOPS; B = 15 GPU = 15 GFLOPS\n");

    // --- Dynamic check by emulation. ---
    let scenario = ScenarioBuilder::new("fig1", hw)
        .seed(1)
        .project(
            ProjectSpec::new(0, "A", 100.0)
                .with_app(AppClass::cpu(
                    0,
                    SimDuration::from_secs(2000.0),
                    SimDuration::from_hours(24.0),
                ))
                .with_app(AppClass::gpu(
                    1,
                    ProcType::NvidiaGpu,
                    SimDuration::from_secs(1000.0),
                    SimDuration::from_hours(24.0),
                )),
        )
        .project(ProjectSpec::new(1, "B", 100.0).with_app(AppClass::gpu(
            2,
            ProcType::NvidiaGpu,
            SimDuration::from_secs(1000.0),
            SimDuration::from_hours(24.0),
        )))
        .build()
        .map_err(|e| format!("fig1 scenario: {e}"))?;
    let client = ClientConfig { sched_policy: JobSchedPolicy::GLOBAL, ..Default::default() };
    let result = Emulator::new(scenario, client, opts.emulator()).run();
    outln!(out, "emulated {} days under JS-GLOBAL:", opts.days);
    let mut t2 = Table::new(&["project", "ideal frac", "emulated frac"]);
    for p in &result.projects {
        let ideal = alloc.total_for(p.id) / (30e9);
        t2.row(&[p.name.clone(), format!("{ideal:.3}"), format!("{:.3}", p.used_frac)]);
    }
    let table2 = t2.render();
    outln!(out, "{table2}");
    outln!(out, "share violation: {:.4}", result.merit.share_violation);

    let csv = t.to_csv();
    let path = crate::figures_dir().join("fig1.csv");
    if save_text(&path, &csv).is_ok() {
        outln!(out, "wrote {}", path.display());
    }
    write_json_into(&mut out, opts, &[("allocation", &t), ("emulated", &t2)])?;
    Ok(out)
}

fn fig2(opts: &FigOpts) -> Result<String, String> {
    let mut out = String::new();
    let mut ninstances = ProcMap::zero();
    ninstances[ProcType::Cpu] = 4.0;
    ninstances[ProcType::NvidiaGpu] = 1.0;
    let platform = RrPlatform {
        now: SimTime::ZERO,
        ninstances,
        on_frac: 1.0,
        shares: vec![(ProjectId(0), 1.0), (ProjectId(1), 1.0)],
    };

    // Current workload: project A with three CPU jobs and a GPU job,
    // project B with two CPU jobs; one of B's jobs has a tight deadline.
    let job = |id: u64, project: u32, pt: ProcType, remaining: f64, deadline: f64| RrJob {
        id: JobId(id),
        project: ProjectId(project),
        proc_type: pt,
        instances: 1.0,
        remaining: SimDuration::from_secs(remaining),
        deadline: SimTime::from_secs(deadline),
    };
    let jobs = vec![
        job(1, 0, ProcType::Cpu, 4000.0, 50_000.0),
        job(2, 0, ProcType::Cpu, 6000.0, 50_000.0),
        job(3, 0, ProcType::Cpu, 2000.0, 50_000.0),
        job(4, 0, ProcType::NvidiaGpu, 3000.0, 20_000.0),
        job(5, 1, ProcType::Cpu, 5000.0, 4_500.0), // tight deadline
        job(6, 1, ProcType::Cpu, 8000.0, 80_000.0),
    ];
    let buf_window = SimDuration::from_hours(3.0);
    let rr = rr_simulate(&platform, &jobs, buf_window);

    outln!(out, "Figure 2 — round-robin simulation of the current workload");
    outln!(out, "host: 4 CPUs + 1 GPU; 2 projects, equal shares; buffer window {buf_window}\n");

    let mut t = Table::new(&[
        "job",
        "project",
        "type",
        "remaining",
        "proj. finish",
        "deadline",
        "endangered",
    ]);
    for j in &jobs {
        let finish = rr
            .finish
            .iter()
            .find(|(id, _)| *id == j.id)
            .map(|(_, f)| format!("{:.0}s", f.secs()))
            .unwrap_or_else(|| "never".into());
        t.row(&[
            j.id.to_string(),
            j.project.to_string(),
            j.proc_type.short_name().to_string(),
            format!("{:.0}s", j.remaining.secs()),
            finish,
            format!("{:.0}s", j.deadline.secs()),
            if rr.is_endangered(j.id) { "YES".into() } else { "no".into() },
        ]);
    }
    let table = t.render();
    outln!(out, "{table}");

    // Busy-horizon bar per processor type, in the style of the figure.
    outln!(out, "predicted busy horizon (each '#' = 15 min):");
    for pt in [ProcType::Cpu, ProcType::NvidiaGpu] {
        let sat = rr.sat[pt];
        let n = (sat.secs() / 900.0).round() as usize;
        outln!(
            out,
            "  {:>4} saturated for {:>8} |{}",
            pt.short_name(),
            format!("{sat}"),
            "#".repeat(n.min(60))
        );
    }
    outln!(out);
    let mut t2 = Table::new(&["type", "SAT(T)", "SHORTFALL(T) inst-sec", "busy now"]);
    for pt in [ProcType::Cpu, ProcType::NvidiaGpu] {
        t2.row(&[
            pt.short_name().to_string(),
            format!("{}", rr.sat[pt]),
            format!("{:.0}", rr.shortfall[pt]),
            format!("{:.1}", rr.busy_now[pt]),
        ]);
    }
    let table2 = t2.render();
    outln!(out, "{table2}");

    let path = crate::figures_dir().join("fig2.csv");
    if save_text(&path, &t.to_csv()).is_ok() {
        outln!(out, "wrote {}", path.display());
    }
    write_json_into(&mut out, opts, &[("jobs", &t), ("horizons", &t2)])?;
    Ok(out)
}

fn fig3(opts: &FigOpts) -> Result<String, String> {
    let mut out = String::new();
    let points: Vec<f64> = if opts.quick {
        vec![1000.0, 1400.0, 2000.0]
    } else {
        (0..=10).map(|i| 1000.0 + 100.0 * i as f64).collect()
    };

    outln!(out, "Figure 3 — wasted fraction vs. slack (job runtime 1000 s)");
    outln!(
        out,
        "scenario 1: 1 CPU, two equal-share projects; latency bound of project 'tight' swept\n"
    );

    // An override replaces the base scenario; the sweep still retunes the
    // first project's first app's latency bound at every point, so a spec
    // that lowers to scenario1 reproduces the builtin figure exactly.
    let base = opts.scenario.clone();
    let result =
        sweep("latency_bound_s", &points, &sched_policies(), &opts.emulator(), 0, move |latency| {
            match &base {
                Some(s) => {
                    let mut s = s.clone();
                    if let Some(app) = s.projects.first_mut().and_then(|p| p.apps.first_mut()) {
                        app.latency_bound = SimDuration::from_secs(latency);
                    }
                    s
                }
                None => scenario1(SimDuration::from_secs(latency)),
            }
        });

    let table = result.table(Metric::Wasted);
    outln!(out, "{}", table.render());
    outln!(
        out,
        "{}",
        line_chart(
            "wasted fraction vs latency bound (slack = bound - 1000 s)",
            &result.series(Metric::Wasted),
            64,
            16,
        )
    );
    outln!(out, "paper shape: at zero slack all policies waste ~0.5; with slack the");
    outln!(out, "deadline-aware policies drop sharply while JS-WRR only recovers as the");
    outln!(out, "bound approaches 2x the runtime.");

    let path = crate::figures_dir().join("fig3.csv");
    if save_text(&path, &table.to_csv()).is_ok() {
        outln!(out, "wrote {}", path.display());
    }
    write_json_into(&mut out, opts, &[("fig3", &table)])?;
    Ok(out)
}

fn fig4(opts: &FigOpts) -> Result<String, String> {
    let mut out = String::new();
    let policies = vec![
        (
            "JS-LOCAL".to_string(),
            ClientConfig {
                sched_policy: JobSchedPolicy::LOCAL,
                fetch_policy: FetchPolicy::Hysteresis,
                ..Default::default()
            },
        ),
        (
            "JS-GLOBAL".to_string(),
            ClientConfig {
                sched_policy: JobSchedPolicy::GLOBAL,
                fetch_policy: FetchPolicy::Hysteresis,
                ..Default::default()
            },
        ),
    ];

    outln!(out, "Figure 4 — local vs. global resource-share accounting");
    outln!(out, "scenario 2: 4 CPUs + 1 GPU (10x); P0 CPU-only, P1 CPU+GPU, equal shares\n");

    let cmp = compare_policies(&base_scenario(opts, scenario2), &policies, &opts.emulator(), 0);
    outln!(out, "{}", cmp.table().render());
    outln!(out, "{}", cmp.bars(Metric::ShareViolation, 40));

    // Per-project usage detail: the mechanism behind the metric.
    let mut t = Table::new(&["policy", "project", "share", "used frac", "CPU-side story"]);
    for (label, r) in &cmp.results {
        for p in &r.projects {
            t.row(&[
                label.clone(),
                p.name.clone(),
                format!("{:.0}%", p.share_frac * 100.0),
                format!("{:.1}%", p.used_frac * 100.0),
                String::new(),
            ]);
        }
    }
    outln!(out, "{}", t.render());
    outln!(out, "paper shape: JS-LOCAL splits the CPU evenly (P1 over-served); JS-GLOBAL");
    outln!(out, "gives the CPU to P0, cutting share violation.");

    let path = crate::figures_dir().join("fig4.csv");
    if save_text(&path, &cmp.table().to_csv()).is_ok() {
        outln!(out, "wrote {}", path.display());
    }
    write_json_into(&mut out, opts, &[("fig4", &cmp.table())])?;
    Ok(out)
}

fn fig5(opts: &FigOpts) -> Result<String, String> {
    let mut out = String::new();

    outln!(out, "Figure 5 — job fetch with and without hysteresis");
    outln!(out, "scenario 4: 4 CPUs + 1 GPU, 20 projects with varying job types\n");

    let cmp =
        compare_policies(&base_scenario(opts, scenario4), &fetch_policies(), &opts.emulator(), 0);
    outln!(out, "{}", cmp.table().render());
    outln!(out, "{}", cmp.bars(Metric::RpcsPerJob, 40));
    outln!(out, "{}", cmp.bars(Metric::Monotony, 40));

    let orig = cmp.get("JF-ORIG").expect("orig run");
    let hyst = cmp.get("JF-HYSTERESIS").expect("hysteresis run");
    outln!(
        out,
        "RPCs/job: ORIG {:.3} vs HYSTERESIS {:.3} ({:.1}x reduction)",
        orig.merit.rpcs_per_job,
        hyst.merit.rpcs_per_job,
        orig.merit.rpcs_per_job / hyst.merit.rpcs_per_job.max(1e-9),
    );
    outln!(
        out,
        "monotony: ORIG {:.3} vs HYSTERESIS {:.3} (hysteresis trades RPCs for monotony)",
        orig.merit.monotony,
        hyst.merit.monotony,
    );

    let path = crate::figures_dir().join("fig5.csv");
    if save_text(&path, &cmp.table().to_csv()).is_ok() {
        outln!(out, "wrote {}", path.display());
    }
    write_json_into(&mut out, opts, &[("fig5", &cmp.table())])?;
    Ok(out)
}

fn fig6(opts: &FigOpts) -> Result<String, String> {
    let mut out = String::new();
    // Half-life sweep, log-spaced around the 1e6 s job length.
    let half_lives: Vec<f64> =
        if opts.quick { vec![1e4, 1e6] } else { vec![1e4, 3e4, 1e5, 3e5, 1e6, 3e6, 1e7, 3e7] };

    outln!(out, "Figure 6 — REC half-life vs. share violation with long low-slack jobs");
    outln!(
        out,
        "scenario 3: 1 CPU; P0 jobs 1e6 s with 10% slack; P1 normal jobs; {} days\n",
        opts.days
    );

    // The swept parameter is the client's REC half-life, not a scenario
    // field, so each "policy" is a distinct client configuration and the
    // sweep parameter selects it: run one policy per half-life at a single
    // scenario point instead.
    let policies: Vec<(String, ClientConfig)> = half_lives
        .iter()
        .map(|&a| {
            (
                format!("A={a:.0e}"),
                ClientConfig {
                    sched_policy: JobSchedPolicy::GLOBAL,
                    rec_half_life: SimDuration::from_secs(a),
                    ..Default::default()
                },
            )
        })
        .collect();
    let base = opts.scenario.clone();
    let result = sweep("half_life_s", &[0.0], &policies, &opts.emulator(), 0, move |_| {
        base.clone().unwrap_or_else(scenario3)
    });

    // Re-shape: one row per half-life.
    let mut rows: Vec<(f64, f64)> = Vec::new();
    let mut table = Table::new(&["half_life_s", "share_violation", "wasted", "jobs"]);
    for (i, &a) in half_lives.iter().enumerate() {
        let r = &result.by_policy[i].1[0];
        rows.push((a.log10(), r.merit.share_violation));
        table.row(&[
            format!("{a:.0e}"),
            format!("{:.4}", r.merit.share_violation),
            format!("{:.4}", r.merit.wasted_fraction),
            r.jobs_completed.to_string(),
        ]);
    }
    outln!(out, "{}", table.render());
    outln!(
        out,
        "{}",
        line_chart(
            "share violation vs log10(half-life)",
            &[bce_controller::Series::new("JS-GLOBAL", rows)],
            64,
            14,
        )
    );
    outln!(out, "paper shape: violation high at small A, dropping once A reaches a few");
    outln!(out, "multiples of the long-job length (1e6 s ~ 11.6 days).");

    let path = crate::figures_dir().join("fig6.csv");
    if save_text(&path, &table.to_csv()).is_ok() {
        outln!(out, "wrote {}", path.display());
    }
    write_json_into(&mut out, opts, &[("fig6", &table)])?;
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_days_match_binaries() {
        assert_eq!(default_days(1), 10.0);
        assert_eq!(default_days(2), 0.0);
        assert_eq!(default_days(6), 60.0);
    }

    #[test]
    fn unknown_figure_is_an_error() {
        let opts =
            FigOpts { days: 0.0, quick: true, json: None, checkpoint_every: None, scenario: None };
        assert!(run_fig(0, &opts).unwrap_err().contains("unknown figure"));
        assert!(run_fig(7, &opts).unwrap_err().contains("unknown figure"));
    }

    #[test]
    fn fig2_snapshot_renders() {
        // Figure 2 is pure computation (no emulation), so it is cheap
        // enough to run in a unit test and pins the runner wiring.
        let opts =
            FigOpts { days: 0.0, quick: false, json: None, checkpoint_every: None, scenario: None };
        let out = run_fig(2, &opts).unwrap();
        assert!(out.contains("Figure 2 — round-robin simulation"));
        assert!(out.contains("SHORTFALL(T)"));
        assert!(out.ends_with('\n'));
    }

    #[test]
    fn scenario_override_rejected_for_computed_figures() {
        let opts = FigOpts {
            days: 0.0,
            quick: true,
            json: None,
            checkpoint_every: None,
            scenario: Some(bce_scenarios::scenario2()),
        };
        for n in [1, 2] {
            let err = run_fig(n, &opts).unwrap_err();
            assert!(err.contains("--scenario applies to figures 3-6"), "{err}");
        }
    }
}

//! # bce-bench — figure regeneration and performance benchmarks
//!
//! The six paper figures live in [`figs`] as one shared runner; the
//! `fig1` … `fig6` binaries and the `bce fig <n>` subcommand are thin
//! shims over it, each printing the series the paper reports (tables +
//! ASCII charts) and writing CSV to `target/figures/`. Criterion benches
//! cover the engine's performance and the design-choice ablations called
//! out in DESIGN.md.

use bce_client::{ClientConfig, FetchPolicy, JobSchedPolicy};
use bce_core::{CheckpointPolicy, EmulatorConfig};
use bce_types::SimDuration;

pub mod figs;

/// Standard labelled policy sets used across the figure binaries.
pub fn sched_policies() -> Vec<(String, ClientConfig)> {
    [JobSchedPolicy::WRR, JobSchedPolicy::LOCAL, JobSchedPolicy::GLOBAL]
        .into_iter()
        .map(|p| (p.name(), ClientConfig { sched_policy: p, ..Default::default() }))
        .collect()
}

pub fn fetch_policies() -> Vec<(String, ClientConfig)> {
    [FetchPolicy::Orig, FetchPolicy::Hysteresis]
        .into_iter()
        .map(|p| (p.name().to_string(), ClientConfig { fetch_policy: p, ..Default::default() }))
        .collect()
}

/// Command-line options shared by the figure binaries.
#[derive(Debug, Clone)]
pub struct FigOpts {
    /// Emulated days (figures default to the paper's 10; fig6 to 60).
    pub days: f64,
    /// Quick mode shrinks durations/sweeps for CI-style smoke runs.
    pub quick: bool,
    /// Also write the figure's tables as JSON to this path.
    pub json: Option<std::path::PathBuf>,
    /// Crash-safety: checkpoint every run this often (simulated days)
    /// under `target/checkpoints`, resuming automatically on restart.
    pub checkpoint_every: Option<f64>,
    /// Replace the figure's base scenario (figures 3-6; loaded through
    /// the unified `--scenario` resolver). A scenario spec that lowers to
    /// the figure's builtin reproduces its output byte-for-byte.
    pub scenario: Option<bce_core::Scenario>,
}

impl FigOpts {
    /// Parse `--days N`, `--quick`, `--json PATH` and
    /// `--checkpoint-every DAYS` from
    /// `std::env::args`. Unknown arguments are an error (exit 1), not a
    /// warning — a typo'd flag silently producing a default-config figure
    /// is worse than no figure.
    pub fn parse(default_days: f64) -> Self {
        let args: Vec<String> = std::env::args().skip(1).collect();
        match Self::parse_from(&args, default_days) {
            Ok(o) => o,
            Err(e) => {
                eprintln!("error: {e}");
                eprintln!("usage: [--days N] [--quick] [--json PATH] [--checkpoint-every DAYS]");
                std::process::exit(1);
            }
        }
    }

    /// Testable core of [`FigOpts::parse`] (no process exit, no env).
    pub fn parse_from(args: &[String], default_days: f64) -> Result<Self, String> {
        let mut days = default_days;
        let mut quick = false;
        let mut json = None;
        let mut checkpoint_every = None;
        let mut i = 0;
        while i < args.len() {
            match args[i].as_str() {
                "--quick" => quick = true,
                "--days" => {
                    let v = args.get(i + 1).ok_or("--days requires a value")?;
                    days = v.parse().map_err(|_| format!("invalid --days value {v:?}"))?;
                    i += 1;
                }
                "--json" => {
                    let v = args.get(i + 1).ok_or("--json requires a path")?;
                    json = Some(std::path::PathBuf::from(v));
                    i += 1;
                }
                "--checkpoint-every" => {
                    let v = args.get(i + 1).ok_or("--checkpoint-every requires a value")?;
                    let d: f64 =
                        v.parse().map_err(|_| format!("invalid --checkpoint-every value {v:?}"))?;
                    if !d.is_finite() || d <= 0.0 {
                        return Err(format!("--checkpoint-every must be positive, got {v:?}"));
                    }
                    checkpoint_every = Some(d);
                    i += 1;
                }
                other => return Err(format!("unknown argument {other:?}")),
            }
            i += 1;
        }
        if quick {
            days = days.min(1.0);
        }
        Ok(FigOpts { days, quick, json, checkpoint_every, scenario: None })
    }

    pub fn emulator(&self) -> EmulatorConfig {
        let checkpoint = self
            .checkpoint_every
            .map(|d| CheckpointPolicy { dir: checkpoints_dir(), every: SimDuration::from_days(d) });
        EmulatorConfig {
            duration: SimDuration::from_days(self.days),
            checkpoint,
            ..Default::default()
        }
    }

    /// Serialize a figure's named tables as one JSON object.
    pub fn tables_json(tables: &[(&str, &bce_controller::Table)]) -> String {
        let mut out = String::from("{\n");
        for (i, (name, t)) in tables.iter().enumerate() {
            out.push_str(&format!("\"{name}\": {}", t.to_json()));
            out.push_str(if i + 1 < tables.len() { ",\n" } else { "\n" });
        }
        out.push_str("}\n");
        out
    }

    /// If `--json PATH` was given, write the figure's named tables there
    /// as one JSON object (`{"<name>": [rows...], ...}`).
    pub fn write_json(&self, tables: &[(&str, &bce_controller::Table)]) {
        let Some(path) = &self.json else { return };
        match bce_controller::save_text(path, &Self::tables_json(tables)) {
            Ok(()) => println!("wrote {}", path.display()),
            Err(e) => {
                eprintln!("error: cannot write {}: {e}", path.display());
                std::process::exit(1);
            }
        }
    }
}

/// Where figure CSVs land.
pub fn figures_dir() -> std::path::PathBuf {
    std::path::PathBuf::from("target/figures")
}

/// Where `--checkpoint-every` run checkpoints land.
pub fn checkpoints_dir() -> std::path::PathBuf {
    std::path::PathBuf::from("target/checkpoints")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn policy_sets_are_labelled() {
        let s = sched_policies();
        assert_eq!(s.len(), 3);
        assert!(s.iter().any(|(l, _)| l == "JS-WRR"));
        let f = fetch_policies();
        assert_eq!(f.len(), 2);
        assert!(f.iter().any(|(l, _)| l == "JF-HYSTERESIS"));
    }

    #[test]
    fn opts_default() {
        let o = FigOpts {
            days: 10.0,
            quick: false,
            json: None,
            checkpoint_every: None,
            scenario: None,
        };
        assert_eq!(o.emulator().duration, SimDuration::from_days(10.0));
    }

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parse_accepts_known_flags() {
        let o = FigOpts::parse_from(&args(&["--days", "3.5", "--json", "out.json"]), 10.0).unwrap();
        assert_eq!(o.days, 3.5);
        assert!(!o.quick);
        assert_eq!(o.json.as_deref(), Some(std::path::Path::new("out.json")));
        // Quick caps the horizon.
        let o = FigOpts::parse_from(&args(&["--quick"]), 10.0).unwrap();
        assert!(o.quick);
        assert_eq!(o.days, 1.0);
    }

    #[test]
    fn parse_rejects_unknown_and_malformed() {
        assert!(FigOpts::parse_from(&args(&["--dsys", "3"]), 10.0)
            .unwrap_err()
            .contains("unknown argument"));
        assert!(FigOpts::parse_from(&args(&["--days"]), 10.0).unwrap_err().contains("value"));
        assert!(FigOpts::parse_from(&args(&["--days", "abc"]), 10.0)
            .unwrap_err()
            .contains("invalid"));
        assert!(FigOpts::parse_from(&args(&["--json"]), 10.0).unwrap_err().contains("path"));
    }

    #[test]
    fn parse_checkpoint_every_configures_the_emulator() {
        let o = FigOpts::parse_from(&args(&["--checkpoint-every", "0.5"]), 10.0).unwrap();
        assert_eq!(o.checkpoint_every, Some(0.5));
        let policy = o.emulator().checkpoint.expect("checkpoint policy set");
        assert_eq!(policy.every, SimDuration::from_days(0.5));
        assert_eq!(policy.dir, checkpoints_dir());
        // Unset leaves checkpointing off.
        assert!(FigOpts::parse_from(&[], 10.0).unwrap().emulator().checkpoint.is_none());
        // Zero, negative and garbage are rejected.
        for bad in [
            &["--checkpoint-every", "0"][..],
            &["--checkpoint-every", "-1"],
            &["--checkpoint-every", "x"],
            &["--checkpoint-every"],
        ] {
            assert!(FigOpts::parse_from(&args(bad), 10.0).is_err(), "{bad:?}");
        }
    }

    #[test]
    fn tables_json_shape() {
        let mut t = bce_controller::Table::new(&["k", "v"]);
        t.row(&["a".into(), "1".into()]);
        let j = FigOpts::tables_json(&[("fig", &t), ("extra", &t)]);
        assert!(j.starts_with("{\n\"fig\": ["));
        assert!(j.contains("\"extra\": ["));
        assert_eq!(j.matches('{').count(), j.matches('}').count());
        assert_eq!(j.matches('[').count(), j.matches(']').count());
    }
}

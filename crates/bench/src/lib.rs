//! # bce-bench — figure regeneration and performance benchmarks
//!
//! One binary per figure of the paper (`fig1` … `fig6`), each printing the
//! series the paper reports (tables + ASCII charts) and writing CSV to
//! `target/figures/`. Criterion benches cover the engine's performance and
//! the design-choice ablations called out in DESIGN.md.

use bce_client::{ClientConfig, FetchPolicy, JobSchedPolicy};
use bce_core::EmulatorConfig;
use bce_types::SimDuration;

/// Standard labelled policy sets used across the figure binaries.
pub fn sched_policies() -> Vec<(String, ClientConfig)> {
    [JobSchedPolicy::WRR, JobSchedPolicy::LOCAL, JobSchedPolicy::GLOBAL]
        .into_iter()
        .map(|p| (p.name(), ClientConfig { sched_policy: p, ..Default::default() }))
        .collect()
}

pub fn fetch_policies() -> Vec<(String, ClientConfig)> {
    [FetchPolicy::Orig, FetchPolicy::Hysteresis]
        .into_iter()
        .map(|p| (p.name().to_string(), ClientConfig { fetch_policy: p, ..Default::default() }))
        .collect()
}

/// Command-line options shared by the figure binaries.
#[derive(Debug, Clone, Copy)]
pub struct FigOpts {
    /// Emulated days (figures default to the paper's 10; fig6 to 60).
    pub days: f64,
    /// Quick mode shrinks durations/sweeps for CI-style smoke runs.
    pub quick: bool,
}

impl FigOpts {
    /// Parse `--days N` and `--quick` from `std::env::args`.
    pub fn parse(default_days: f64) -> Self {
        let mut days = default_days;
        let mut quick = false;
        let args: Vec<String> = std::env::args().collect();
        let mut i = 1;
        while i < args.len() {
            match args[i].as_str() {
                "--quick" => quick = true,
                "--days" => {
                    if let Some(v) = args.get(i + 1).and_then(|s| s.parse().ok()) {
                        days = v;
                        i += 1;
                    }
                }
                other => eprintln!("ignoring unknown argument {other:?}"),
            }
            i += 1;
        }
        if quick {
            days = days.min(1.0);
        }
        FigOpts { days, quick }
    }

    pub fn emulator(&self) -> EmulatorConfig {
        EmulatorConfig { duration: SimDuration::from_days(self.days), ..Default::default() }
    }
}

/// Where figure CSVs land.
pub fn figures_dir() -> std::path::PathBuf {
    std::path::PathBuf::from("target/figures")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn policy_sets_are_labelled() {
        let s = sched_policies();
        assert_eq!(s.len(), 3);
        assert!(s.iter().any(|(l, _)| l == "JS-WRR"));
        let f = fetch_policies();
        assert_eq!(f.len(), 2);
        assert!(f.iter().any(|(l, _)| l == "JF-HYSTERESIS"));
    }

    #[test]
    fn opts_default() {
        let o = FigOpts { days: 10.0, quick: false };
        assert_eq!(o.emulator().duration, SimDuration::from_days(10.0));
    }
}

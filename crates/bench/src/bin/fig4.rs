//! Figure 4: "A resource-share accounting policy that spans processor
//! types reduces resource share violation."
//!
//! Scenario 2: 4 CPUs + 1 GPU (10x a CPU); project 0 has CPU jobs only,
//! project 1 has both. JS-LOCAL balances the CPU between the two projects
//! (per-type debts know nothing of the GPU), so project 1 ends up with the
//! GPU *plus* half the CPU. JS-GLOBAL sees project 1's REC towering over
//! its share and gives the whole CPU to project 0 — "the latter policy
//! respects resource share as much as possible while still maximizing
//! throughput" (§5.2).

use bce_bench::FigOpts;
use bce_client::{ClientConfig, FetchPolicy, JobSchedPolicy};
use bce_controller::{compare_policies, save_text, Metric, Table};
use bce_scenarios::scenario2;

fn main() {
    let opts = FigOpts::parse(10.0);
    let policies = vec![
        (
            "JS-LOCAL".to_string(),
            ClientConfig {
                sched_policy: JobSchedPolicy::LOCAL,
                fetch_policy: FetchPolicy::Hysteresis,
                ..Default::default()
            },
        ),
        (
            "JS-GLOBAL".to_string(),
            ClientConfig {
                sched_policy: JobSchedPolicy::GLOBAL,
                fetch_policy: FetchPolicy::Hysteresis,
                ..Default::default()
            },
        ),
    ];

    println!("Figure 4 — local vs. global resource-share accounting");
    println!("scenario 2: 4 CPUs + 1 GPU (10x); P0 CPU-only, P1 CPU+GPU, equal shares\n");

    let cmp = compare_policies(&scenario2(), &policies, &opts.emulator(), 0);
    println!("{}", cmp.table().render());
    println!("{}", cmp.bars(Metric::ShareViolation, 40));

    // Per-project usage detail: the mechanism behind the metric.
    let mut t = Table::new(&["policy", "project", "share", "used frac", "CPU-side story"]);
    for (label, r) in &cmp.results {
        for p in &r.projects {
            t.row(&[
                label.clone(),
                p.name.clone(),
                format!("{:.0}%", p.share_frac * 100.0),
                format!("{:.1}%", p.used_frac * 100.0),
                String::new(),
            ]);
        }
    }
    println!("{}", t.render());
    println!("paper shape: JS-LOCAL splits the CPU evenly (P1 over-served); JS-GLOBAL");
    println!("gives the CPU to P0, cutting share violation.");

    let path = bce_bench::figures_dir().join("fig4.csv");
    if save_text(&path, &cmp.table().to_csv()).is_ok() {
        println!("wrote {}", path.display());
    }
    opts.write_json(&[("fig4", &cmp.table())]);
}

//! Figure 4: "A resource-share accounting policy that spans processor
//! types reduces resource share violation."
//!
//! Scenario 2: 4 CPUs + 1 GPU (10x a CPU); project 0 has CPU jobs only,
//! project 1 has both. JS-LOCAL balances the CPU between the two projects
//! (per-type debts know nothing of the GPU), so project 1 ends up with the
//! GPU *plus* half the CPU. JS-GLOBAL sees project 1's REC towering over
//! its share and gives the whole CPU to project 0 — "the latter policy
//! respects resource share as much as possible while still maximizing
//! throughput" (§5.2).

use bce_bench::{figs, FigOpts};

fn main() {
    let opts = FigOpts::parse(figs::default_days(4));
    match figs::run_fig(4, &opts) {
        Ok(out) => print!("{out}"),
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    }
}

//! Extension experiment: server-side campaign simulation (the EmBOINC
//! direction, §6.1). One project runs a 500-workunit campaign against a
//! 200-host synthetic volunteer population; we sweep the server's
//! replication/validation policy and host-selection strategy and report
//! campaign latency vs. wasted replicas.

use bce_bench::FigOpts;
use bce_controller::{save_text, Table};
use bce_emboinc::{run_campaign, HostSelection, PopulationSpec, ReplicationPolicy, Workload};
use bce_sim::Rng;

fn main() {
    let opts = FigOpts::parse(0.0); // duration not used; --quick shrinks sizes
    let (nhosts, nwus) = if opts.quick { (60, 100) } else { (200, 500) };
    let mut rng = Rng::stream(2011, "population");
    let hosts = PopulationSpec { nhosts, ..Default::default() }.sample(&mut rng);
    let workload = Workload { nworkunits: nwus, ..Default::default() };

    println!("EmBOINC-style server campaign: {nwus} workunits on {nhosts} hosts");
    println!("(log-normal speeds; error/vanish tails; 7-day replica deadline)\n");

    let mut t = Table::new(&[
        "replication",
        "selection",
        "validated",
        "failed",
        "mean makespan (d)",
        "p95 (d)",
        "replicas",
        "waste frac",
    ]);
    for replication in
        [ReplicationPolicy::SINGLE, ReplicationPolicy::REDUNDANT, ReplicationPolicy::EAGER]
    {
        for selection in
            [HostSelection::Random, HostSelection::FastestFirst, HostSelection::ReliableFirst]
        {
            let r = run_campaign(&hosts, &workload, replication, selection, 7);
            t.row(&[
                replication.name(),
                selection.name().to_string(),
                r.completed.to_string(),
                r.failed.to_string(),
                format!("{:.2}", r.makespan.mean() / 86_400.0),
                format!("{:.2}", r.makespan_p95 / 86_400.0),
                r.replicas_issued.to_string(),
                format!("{:.3}", r.waste_fraction()),
            ]);
        }
    }
    let rendered = t.render();
    println!("{rendered}");
    println!("expected shapes: R2/Q2 doubles replicas for validation; eager R3/Q1 cuts");
    println!("latency at a waste cost; reliable-first reduces waste, fastest-first");
    println!("reduces makespan while hosts outnumber outstanding replicas.");

    let path = bce_bench::figures_dir().join("emboinc_study.csv");
    if save_text(&path, &t.to_csv()).is_ok() {
        println!("wrote {}", path.display());
    }
    opts.write_json(&[("emboinc_study", &t)]);
}

//! Figure 6: "In a scenario with long low-slack jobs, credit estimate
//! half-life affects resource share violation."
//!
//! Scenario 3: project 0 supplies million-second low-slack jobs that run
//! nearly exclusively once started; project 1 supplies normal jobs. Under
//! JS-GLOBAL, the REC half-life `A` decides how long the system remembers
//! project 0's monopolization: "when A is small, the system has a short
//! memory … and as a result share violation is high. Increasing A to
//! several times the long job size reduces this effect."
//!
//! The default period is 60 days here (a 10-day window cannot even hold
//! one 11.6-day job).

use bce_bench::{figs, FigOpts};

fn main() {
    let opts = FigOpts::parse(figs::default_days(6));
    match figs::run_fig(6, &opts) {
        Ok(out) => print!("{out}"),
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    }
}

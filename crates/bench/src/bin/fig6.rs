//! Figure 6: "In a scenario with long low-slack jobs, credit estimate
//! half-life affects resource share violation."
//!
//! Scenario 3: project 0 supplies million-second low-slack jobs that run
//! nearly exclusively once started; project 1 supplies normal jobs. Under
//! JS-GLOBAL, the REC half-life `A` decides how long the system remembers
//! project 0's monopolization: "when A is small, the system has a short
//! memory … and as a result share violation is high. Increasing A to
//! several times the long job size reduces this effect."
//!
//! The default period is 60 days here (a 10-day window cannot even hold
//! one 11.6-day job).

use bce_bench::FigOpts;
use bce_client::{ClientConfig, JobSchedPolicy};
use bce_controller::{line_chart, save_text, sweep};
use bce_scenarios::scenario3;
use bce_types::SimDuration;

fn main() {
    let opts = FigOpts::parse(60.0);
    // Half-life sweep, log-spaced around the 1e6 s job length.
    let half_lives: Vec<f64> =
        if opts.quick { vec![1e4, 1e6] } else { vec![1e4, 3e4, 1e5, 3e5, 1e6, 3e6, 1e7, 3e7] };

    println!("Figure 6 — REC half-life vs. share violation with long low-slack jobs");
    println!(
        "scenario 3: 1 CPU; P0 jobs 1e6 s with 10% slack; P1 normal jobs; {} days\n",
        opts.days
    );

    // The swept parameter is the client's REC half-life, not a scenario
    // field, so each "policy" is a distinct client configuration and the
    // sweep parameter selects it: run one policy per half-life at a single
    // scenario point instead.
    let policies: Vec<(String, ClientConfig)> = half_lives
        .iter()
        .map(|&a| {
            (
                format!("A={a:.0e}"),
                ClientConfig {
                    sched_policy: JobSchedPolicy::GLOBAL,
                    rec_half_life: SimDuration::from_secs(a),
                    ..Default::default()
                },
            )
        })
        .collect();
    let result = sweep("half_life_s", &[0.0], &policies, &opts.emulator(), 0, |_| scenario3());

    // Re-shape: one row per half-life.
    let mut rows: Vec<(f64, f64)> = Vec::new();
    let mut table =
        bce_controller::Table::new(&["half_life_s", "share_violation", "wasted", "jobs"]);
    for (i, &a) in half_lives.iter().enumerate() {
        let r = &result.by_policy[i].1[0];
        rows.push((a.log10(), r.merit.share_violation));
        table.row(&[
            format!("{a:.0e}"),
            format!("{:.4}", r.merit.share_violation),
            format!("{:.4}", r.merit.wasted_fraction),
            r.jobs_completed.to_string(),
        ]);
    }
    println!("{}", table.render());
    println!(
        "{}",
        line_chart(
            "share violation vs log10(half-life)",
            &[bce_controller::Series::new("JS-GLOBAL", rows)],
            64,
            14,
        )
    );
    println!("paper shape: violation high at small A, dropping once A reaches a few");
    println!("multiples of the long-job length (1e6 s ~ 11.6 days).");

    let path = bce_bench::figures_dir().join("fig6.csv");
    if save_text(&path, &table.to_csv()).is_ok() {
        println!("wrote {}", path.display());
    }
    opts.write_json(&[("fig6", &table)]);
}

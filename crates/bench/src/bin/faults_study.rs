//! Robustness study: graceful degradation under injected faults.
//!
//! Sweeps the transient failure rate (applied to both scheduler RPCs and
//! file transfers) across the {JS} x {JF} policy grid and tabulates how the
//! figures of merit degrade. Also verifies the zero-fault identity: a sweep
//! point at rate 0 must reproduce the no-fault baseline bit-for-bit, proving
//! the fault plumbing itself is free.
//!
//! Run with `--crashes` to additionally inject host crashes (exponential
//! inter-arrivals, 12 h MTBF) and report recovery times.

use bce_bench::FigOpts;
use bce_client::{ClientConfig, FetchPolicy, JobSchedPolicy, NetworkModel};
use bce_controller::{save_text, Table};
use bce_core::{Emulator, EmulatorConfig, FaultConfig, Scenario};
use bce_scenarios::scenario2;
use bce_types::SimDuration;

/// Scenario 2 with non-trivial file transfers (4 MB in / 1 MB out over a
/// 1 MB/s link), so the transfer-fault path is actually exercised — the
/// paper scenarios model instant transfers and would never draw from the
/// transfer fault stream.
fn scenario_with_files() -> Scenario {
    let mut s = scenario2();
    for p in &mut s.projects {
        for a in &mut p.apps {
            a.input_bytes = 4e6;
            a.output_bytes = 1e6;
        }
    }
    s.network = Some(NetworkModel::symmetric(1e6));
    s
}

fn policies() -> Vec<(String, ClientConfig)> {
    let mut v = Vec::new();
    for sched in [JobSchedPolicy::LOCAL, JobSchedPolicy::GLOBAL] {
        for fetch in [FetchPolicy::Orig, FetchPolicy::Hysteresis] {
            v.push((
                format!("{}+{}", sched.name(), fetch.name()),
                ClientConfig { sched_policy: sched, fetch_policy: fetch, ..Default::default() },
            ));
        }
    }
    v
}

fn main() {
    let opts = FigOpts::parse(2.0);
    let crashes = std::env::args().any(|a| a == "--crashes");
    let rates: &[f64] =
        if opts.quick { &[0.0, 0.1, 0.4] } else { &[0.0, 0.02, 0.05, 0.1, 0.2, 0.4] };
    let mtbf = crashes.then(|| SimDuration::from_hours(12.0));
    let scenario = scenario_with_files();

    println!(
        "Fault-injection study: {} over {} days, rates {:?}{}",
        scenario.name,
        opts.days,
        rates,
        if crashes { ", host crashes at 12 h MTBF" } else { "" }
    );
    println!("(rate = per-RPC and per-transfer transient failure probability)\n");

    let mut t = Table::new(&[
        "policy",
        "rate",
        "jobs",
        "errored",
        "RPCs/job",
        "RPC fail",
        "xfer fail",
        "crashes",
        "recovery",
        "fault-waste",
        "wasted",
        "idle",
    ]);
    let mut identity_ok = true;
    for (name, cfg) in policies() {
        for &rate in rates {
            let mut faults = FaultConfig::with_failure_rate(rate);
            faults.crash_mtbf = mtbf;
            let emu = EmulatorConfig {
                duration: SimDuration::from_days(opts.days),
                faults,
                ..Default::default()
            };
            let r = Emulator::new(scenario.clone(), cfg, emu).run();
            if rate == 0.0 && mtbf.is_none() {
                let base = Emulator::new(scenario.clone(), cfg, opts.emulator()).run();
                identity_ok &= base.merit.rpcs_per_job.to_bits() == r.merit.rpcs_per_job.to_bits()
                    && base.total_flops_used.to_bits() == r.total_flops_used.to_bits()
                    && base.jobs_completed == r.jobs_completed;
            }
            let fm = &r.faults;
            t.row(&[
                name.clone(),
                format!("{rate:.2}"),
                r.jobs_completed.to_string(),
                fm.jobs_errored.to_string(),
                format!("{:.3}", r.merit.rpcs_per_job),
                fm.transient_rpc_failures.to_string(),
                fm.transfer_failures.to_string(),
                fm.crashes.to_string(),
                if fm.recoveries > 0 {
                    format!("{:.0}s", fm.mean_recovery_secs)
                } else {
                    "-".to_string()
                },
                format!("{:.4}", fm.fault_wasted_fraction),
                format!("{:.4}", r.merit.wasted_fraction),
                format!("{:.4}", r.merit.idle_fraction),
            ]);
        }
    }
    let rendered = t.render();
    println!("{rendered}");
    if mtbf.is_none() {
        println!(
            "zero-fault identity: {}",
            if identity_ok {
                "OK (rate 0 reproduces the no-fault baseline bit-for-bit)"
            } else {
                "MISMATCH — fault plumbing perturbs the baseline!"
            }
        );
    }
    println!("expected: RPCs/job and fault-waste rise monotonically with the rate,");
    println!("while completed jobs degrade gracefully (no cliff, no panics).");

    let path = bce_bench::figures_dir().join("faults_study.csv");
    if save_text(&path, &t.to_csv()).is_ok() {
        println!("wrote {}", path.display());
    }
    opts.write_json(&[("faults_study", &t)]);
}

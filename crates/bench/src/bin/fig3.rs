//! Figure 3: "A job-scheduling policy that incorporates deadlines wastes
//! less processing time."
//!
//! Scenario 1 (CPU only, two projects); project 0's job runtime is 1000 s
//! and its latency bound sweeps 1000 → 2000 s. With zero slack neither
//! policy can meet the deadlines (~half the processing wasted); with more
//! slack the deadline-aware policies (JS-LOCAL/JS-GLOBAL) waste far less
//! than JS-WRR, which keeps missing until the slack covers the queueing
//! delay behind the other project's jobs.

use bce_bench::{figs, FigOpts};

fn main() {
    let opts = FigOpts::parse(figs::default_days(3));
    match figs::run_fig(3, &opts) {
        Ok(out) => print!("{out}"),
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    }
}

//! Figure 3: "A job-scheduling policy that incorporates deadlines wastes
//! less processing time."
//!
//! Scenario 1 (CPU only, two projects); project 0's job runtime is 1000 s
//! and its latency bound sweeps 1000 → 2000 s. With zero slack neither
//! policy can meet the deadlines (~half the processing wasted); with more
//! slack the deadline-aware policies (JS-LOCAL/JS-GLOBAL) waste far less
//! than JS-WRR, which keeps missing until the slack covers the queueing
//! delay behind the other project's jobs.

use bce_bench::{sched_policies, FigOpts};
use bce_controller::{line_chart, save_text, sweep, Metric};
use bce_scenarios::scenario1;
use bce_types::SimDuration;

fn main() {
    let opts = FigOpts::parse(10.0);
    let points: Vec<f64> = if opts.quick {
        vec![1000.0, 1400.0, 2000.0]
    } else {
        (0..=10).map(|i| 1000.0 + 100.0 * i as f64).collect()
    };

    println!("Figure 3 — wasted fraction vs. slack (job runtime 1000 s)");
    println!(
        "scenario 1: 1 CPU, two equal-share projects; latency bound of project 'tight' swept\n"
    );

    let result =
        sweep("latency_bound_s", &points, &sched_policies(), &opts.emulator(), 0, |latency| {
            scenario1(SimDuration::from_secs(latency))
        });

    let table = result.table(Metric::Wasted);
    println!("{}", table.render());
    println!(
        "{}",
        line_chart(
            "wasted fraction vs latency bound (slack = bound - 1000 s)",
            &result.series(Metric::Wasted),
            64,
            16,
        )
    );
    println!("paper shape: at zero slack all policies waste ~0.5; with slack the");
    println!("deadline-aware policies drop sharply while JS-WRR only recovers as the");
    println!("bound approaches 2x the runtime.");

    let path = bce_bench::figures_dir().join("fig3.csv");
    if save_text(&path, &table.to_csv()).is_ok() {
        println!("wrote {}", path.display());
    }
    opts.write_json(&[("fig3", &table)]);
}

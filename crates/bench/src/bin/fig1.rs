//! Figure 1: "A project's resource share applies to the host's combined
//! processing resources."
//!
//! Host: 10 GFLOPS CPU + 20 GFLOPS GPU. Projects A and B with equal
//! shares; A has both CPU and GPU applications, B has GPU applications
//! only. The paper's ideal allocation: A gets 100% of the CPU and 25% of
//! the GPU, B gets 75% of the GPU — 15 GFLOPS each.
//!
//! This binary prints the closed-form ideal allocation and then verifies
//! it dynamically: a 10-day emulation under JS-GLOBAL should converge to
//! the same per-project totals.

use bce_bench::{figs, FigOpts};

fn main() {
    let opts = FigOpts::parse(figs::default_days(1));
    match figs::run_fig(1, &opts) {
        Ok(out) => print!("{out}"),
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    }
}

//! Figure 1: "A project's resource share applies to the host's combined
//! processing resources."
//!
//! Host: 10 GFLOPS CPU + 20 GFLOPS GPU. Projects A and B with equal
//! shares; A has both CPU and GPU applications, B has GPU applications
//! only. The paper's ideal allocation: A gets 100% of the CPU and 25% of
//! the GPU, B gets 75% of the GPU — 15 GFLOPS each.
//!
//! This binary prints the closed-form ideal allocation and then verifies
//! it dynamically: a 10-day emulation under JS-GLOBAL should converge to
//! the same per-project totals.

use bce_bench::FigOpts;
use bce_client::{ClientConfig, JobSchedPolicy};
use bce_controller::{save_text, Table};
use bce_core::{Emulator, Scenario};
use bce_types::{
    ideal_allocation, AppClass, Hardware, ProcType, ProjectId, ProjectSpec, ShareDemand,
    SimDuration, UsableTypes,
};

fn main() {
    let opts = FigOpts::parse(10.0);
    let hw = Hardware::cpu_only(1, 10e9).with_group(ProcType::NvidiaGpu, 1, 20e9);

    // --- Closed form (the figure itself). ---
    let demands = [
        ShareDemand {
            id: ProjectId(0),
            share: 1.0,
            usable: UsableTypes::of(&[ProcType::Cpu, ProcType::NvidiaGpu]),
        },
        ShareDemand {
            id: ProjectId(1),
            share: 1.0,
            usable: UsableTypes::only(ProcType::NvidiaGpu),
        },
    ];
    let alloc = ideal_allocation(&hw, &demands);

    println!("Figure 1 — resource share applies to combined processing resources");
    println!("host: 10 GFLOPS CPU + 20 GFLOPS GPU; equal shares; A: CPU+GPU apps, B: GPU only\n");
    let mut t = Table::new(&["project", "CPU GFLOPS", "GPU GFLOPS", "total GFLOPS"]);
    for (name, id) in [("A", ProjectId(0)), ("B", ProjectId(1))] {
        let split = alloc.device_split(id).expect("allocated");
        t.row(&[
            name.to_string(),
            format!("{:.1}", split[ProcType::Cpu] / 1e9),
            format!("{:.1}", split[ProcType::NvidiaGpu] / 1e9),
            format!("{:.1}", alloc.total_for(id) / 1e9),
        ]);
    }
    let table = t.render();
    println!("{table}");
    println!("paper: A = 10 CPU + 5 GPU = 15 GFLOPS; B = 15 GPU = 15 GFLOPS\n");

    // --- Dynamic check by emulation. ---
    let scenario = Scenario::new("fig1", hw)
        .with_seed(1)
        .with_project(
            ProjectSpec::new(0, "A", 100.0)
                .with_app(AppClass::cpu(
                    0,
                    SimDuration::from_secs(2000.0),
                    SimDuration::from_hours(24.0),
                ))
                .with_app(AppClass::gpu(
                    1,
                    ProcType::NvidiaGpu,
                    SimDuration::from_secs(1000.0),
                    SimDuration::from_hours(24.0),
                )),
        )
        .with_project(ProjectSpec::new(1, "B", 100.0).with_app(AppClass::gpu(
            2,
            ProcType::NvidiaGpu,
            SimDuration::from_secs(1000.0),
            SimDuration::from_hours(24.0),
        )));
    let client = ClientConfig { sched_policy: JobSchedPolicy::GLOBAL, ..Default::default() };
    let result = Emulator::new(scenario, client, opts.emulator()).run();
    println!("emulated {} days under JS-GLOBAL:", opts.days);
    let mut t2 = Table::new(&["project", "ideal frac", "emulated frac"]);
    for p in &result.projects {
        let ideal = alloc.total_for(p.id) / (30e9);
        t2.row(&[p.name.clone(), format!("{ideal:.3}"), format!("{:.3}", p.used_frac)]);
    }
    let table2 = t2.render();
    println!("{table2}");
    println!("share violation: {:.4}", result.merit.share_violation);

    let csv = t.to_csv();
    let path = bce_bench::figures_dir().join("fig1.csv");
    if save_text(&path, &csv).is_ok() {
        println!("wrote {}", path.display());
    }
    opts.write_json(&[("allocation", &t), ("emulated", &t2)]);
}

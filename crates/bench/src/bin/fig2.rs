//! Figure 2: "The round-robin simulator predicts how long each processor
//! instance will be busy given the current workload."
//!
//! Builds a representative snapshot (4 CPUs + 1 GPU, two projects with a
//! mix of queued jobs), runs the client's round-robin simulation (§3.2),
//! and renders the predicted busy horizon per instance plus the derived
//! quantities the policies consume: deadline-endangered jobs, `SAT(T)`
//! and `SHORTFALL(T)`.

use bce_bench::{figs, FigOpts};

fn main() {
    let opts = FigOpts::parse(figs::default_days(2));
    match figs::run_fig(2, &opts) {
        Ok(out) => print!("{out}"),
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    }
}

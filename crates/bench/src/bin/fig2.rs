//! Figure 2: "The round-robin simulator predicts how long each processor
//! instance will be busy given the current workload."
//!
//! Builds a representative snapshot (4 CPUs + 1 GPU, two projects with a
//! mix of queued jobs), runs the client's round-robin simulation (§3.2),
//! and renders the predicted busy horizon per instance plus the derived
//! quantities the policies consume: deadline-endangered jobs, `SAT(T)`
//! and `SHORTFALL(T)`.

use bce_bench::FigOpts;
use bce_client::{rr_simulate, RrJob, RrPlatform};
use bce_controller::{save_text, Table};
use bce_types::{JobId, ProcMap, ProcType, ProjectId, SimDuration, SimTime};

fn main() {
    // Snapshot figure: no emulated duration, but --json still applies.
    let opts = FigOpts::parse(0.0);
    let mut ninstances = ProcMap::zero();
    ninstances[ProcType::Cpu] = 4.0;
    ninstances[ProcType::NvidiaGpu] = 1.0;
    let platform = RrPlatform {
        now: SimTime::ZERO,
        ninstances,
        on_frac: 1.0,
        shares: vec![(ProjectId(0), 1.0), (ProjectId(1), 1.0)],
    };

    // Current workload: project A with three CPU jobs and a GPU job,
    // project B with two CPU jobs; one of B's jobs has a tight deadline.
    let job = |id: u64, project: u32, pt: ProcType, remaining: f64, deadline: f64| RrJob {
        id: JobId(id),
        project: ProjectId(project),
        proc_type: pt,
        instances: 1.0,
        remaining: SimDuration::from_secs(remaining),
        deadline: SimTime::from_secs(deadline),
    };
    let jobs = vec![
        job(1, 0, ProcType::Cpu, 4000.0, 50_000.0),
        job(2, 0, ProcType::Cpu, 6000.0, 50_000.0),
        job(3, 0, ProcType::Cpu, 2000.0, 50_000.0),
        job(4, 0, ProcType::NvidiaGpu, 3000.0, 20_000.0),
        job(5, 1, ProcType::Cpu, 5000.0, 4_500.0), // tight deadline
        job(6, 1, ProcType::Cpu, 8000.0, 80_000.0),
    ];
    let buf_window = SimDuration::from_hours(3.0);
    let out = rr_simulate(&platform, &jobs, buf_window);

    println!("Figure 2 — round-robin simulation of the current workload");
    println!("host: 4 CPUs + 1 GPU; 2 projects, equal shares; buffer window {buf_window}\n");

    let mut t = Table::new(&[
        "job",
        "project",
        "type",
        "remaining",
        "proj. finish",
        "deadline",
        "endangered",
    ]);
    for j in &jobs {
        let finish = out
            .finish
            .iter()
            .find(|(id, _)| *id == j.id)
            .map(|(_, f)| format!("{:.0}s", f.secs()))
            .unwrap_or_else(|| "never".into());
        t.row(&[
            j.id.to_string(),
            j.project.to_string(),
            j.proc_type.short_name().to_string(),
            format!("{:.0}s", j.remaining.secs()),
            finish,
            format!("{:.0}s", j.deadline.secs()),
            if out.is_endangered(j.id) { "YES".into() } else { "no".into() },
        ]);
    }
    let table = t.render();
    println!("{table}");

    // Busy-horizon bar per processor type, in the style of the figure.
    println!("predicted busy horizon (each '#' = 15 min):");
    for pt in [ProcType::Cpu, ProcType::NvidiaGpu] {
        let sat = out.sat[pt];
        let n = (sat.secs() / 900.0).round() as usize;
        println!(
            "  {:>4} saturated for {:>8} |{}",
            pt.short_name(),
            format!("{sat}"),
            "#".repeat(n.min(60))
        );
    }
    println!();
    let mut t2 = Table::new(&["type", "SAT(T)", "SHORTFALL(T) inst-sec", "busy now"]);
    for pt in [ProcType::Cpu, ProcType::NvidiaGpu] {
        t2.row(&[
            pt.short_name().to_string(),
            format!("{}", out.sat[pt]),
            format!("{:.0}", out.shortfall[pt]),
            format!("{:.1}", out.busy_now[pt]),
        ]);
    }
    let table2 = t2.render();
    println!("{table2}");

    let path = bce_bench::figures_dir().join("fig2.csv");
    if save_text(&path, &t.to_csv()).is_ok() {
        println!("wrote {}", path.display());
    }
    opts.write_json(&[("jobs", &t), ("horizons", &t2)]);
}

//! Figure 5: "A job-fetch policy with hysteresis reduces the number of
//! scheduler RPCs."
//!
//! Scenario 4: CPU + GPU host, twenty projects with varying job types.
//! JF-ORIG tops the queue up continuously with small per-project
//! requests; JF-HYSTERESIS waits until the buffer drops below `min_queue`
//! and then fetches the whole shortfall from a single project. Result:
//! fewer RPCs per job, but higher monotony, "because each RPC fetches
//! multiple jobs, and as a result the client may have jobs from only one
//! project for some periods."

use bce_bench::{fetch_policies, FigOpts};
use bce_controller::{compare_policies, save_text, Metric};
use bce_scenarios::scenario4;

fn main() {
    let opts = FigOpts::parse(10.0);

    println!("Figure 5 — job fetch with and without hysteresis");
    println!("scenario 4: 4 CPUs + 1 GPU, 20 projects with varying job types\n");

    let cmp = compare_policies(&scenario4(), &fetch_policies(), &opts.emulator(), 0);
    println!("{}", cmp.table().render());
    println!("{}", cmp.bars(Metric::RpcsPerJob, 40));
    println!("{}", cmp.bars(Metric::Monotony, 40));

    let orig = cmp.get("JF-ORIG").expect("orig run");
    let hyst = cmp.get("JF-HYSTERESIS").expect("hysteresis run");
    println!(
        "RPCs/job: ORIG {:.3} vs HYSTERESIS {:.3} ({:.1}x reduction)",
        orig.merit.rpcs_per_job,
        hyst.merit.rpcs_per_job,
        orig.merit.rpcs_per_job / hyst.merit.rpcs_per_job.max(1e-9),
    );
    println!(
        "monotony: ORIG {:.3} vs HYSTERESIS {:.3} (hysteresis trades RPCs for monotony)",
        orig.merit.monotony, hyst.merit.monotony,
    );

    let path = bce_bench::figures_dir().join("fig5.csv");
    if save_text(&path, &cmp.table().to_csv()).is_ok() {
        println!("wrote {}", path.display());
    }
    opts.write_json(&[("fig5", &cmp.table())]);
}

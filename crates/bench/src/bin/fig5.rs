//! Figure 5: "A job-fetch policy with hysteresis reduces the number of
//! scheduler RPCs."
//!
//! Scenario 4: CPU + GPU host, twenty projects with varying job types.
//! JF-ORIG tops the queue up continuously with small per-project
//! requests; JF-HYSTERESIS waits until the buffer drops below `min_queue`
//! and then fetches the whole shortfall from a single project. Result:
//! fewer RPCs per job, but higher monotony, "because each RPC fetches
//! multiple jobs, and as a result the client may have jobs from only one
//! project for some periods."

use bce_bench::{figs, FigOpts};

fn main() {
    let opts = FigOpts::parse(figs::default_days(5));
    match figs::run_fig(5, &opts) {
        Ok(out) => print!("{out}"),
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    }
}

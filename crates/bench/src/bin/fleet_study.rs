//! Extension experiment (§6.2): cross-host resource-share enforcement.
//!
//! A volunteer with a heterogeneous fleet — a big CPU box and a GPU box —
//! attaches two projects with equal shares; one project supplies both CPU
//! and GPU work. Under the baseline per-host enforcement the mixed
//! project claims half of the CPU box *and* the GPU, overshooting its
//! fleet-level share. The cross-host strategy assigns each host the
//! shares that make the fleet-level totals track the volunteer's intent
//! ("if a particular host is well-suited to a particular project, it
//! could run only that project, and the difference could be made up on
//! other hosts").

use bce_bench::FigOpts;
use bce_client::ClientConfig;
use bce_controller::{save_text, Table};
use bce_fleet::{assign_shares, run_fleet, Fleet, FleetHost, ShareStrategy};
use bce_types::{AppClass, Hardware, ProcType, ProjectSpec, SimDuration};

fn volunteer_fleet() -> Fleet {
    Fleet {
        hosts: vec![
            FleetHost::new("cpu-box", Hardware::cpu_only(8, 2e9)),
            FleetHost::new(
                "gpu-box",
                Hardware::cpu_only(2, 1e9).with_group(ProcType::NvidiaGpu, 1, 2e10),
            ),
            FleetHost::new("laptop", Hardware::cpu_only(2, 1.5e9)),
        ],
        projects: vec![
            ProjectSpec::new(0, "mixed", 100.0)
                .with_app(AppClass::gpu(
                    0,
                    ProcType::NvidiaGpu,
                    SimDuration::from_secs(1000.0),
                    SimDuration::from_hours(24.0),
                ))
                .with_app(AppClass::cpu(
                    1,
                    SimDuration::from_secs(2000.0),
                    SimDuration::from_hours(24.0),
                )),
            ProjectSpec::new(1, "cpu_only", 100.0).with_app(AppClass::cpu(
                2,
                SimDuration::from_secs(1000.0),
                SimDuration::from_hours(24.0),
            )),
        ],
        seed: 11,
    }
}

fn main() {
    let opts = FigOpts::parse(3.0);
    let fleet = volunteer_fleet();
    println!("Cross-host share enforcement (§6.2 extension), {} days/host", opts.days);
    println!(
        "fleet: {} hosts, {} projects, equal volunteer shares\n",
        fleet.hosts.len(),
        fleet.projects.len()
    );

    // Show the share assignments first.
    for strategy in [ShareStrategy::PerHost, ShareStrategy::CrossHost] {
        println!("{} share assignment:", strategy.name());
        let a = assign_shares(&fleet, strategy);
        for (host, shares) in fleet.hosts.iter().zip(&a) {
            let total: f64 = shares.iter().map(|(_, s)| s).sum();
            let detail: Vec<String> = shares
                .iter()
                .map(|(p, s)| {
                    let name = &fleet.projects.iter().find(|q| q.id == *p).unwrap().name;
                    format!("{name} {:.0}%", 100.0 * s / total.max(1e-9))
                })
                .collect();
            println!("  {:<8} {}", host.name, detail.join(", "));
        }
        println!();
    }

    let mut t =
        Table::new(&["strategy", "fleet share violation", "total TFLOP-days", "per-project split"]);
    for strategy in [ShareStrategy::PerHost, ShareStrategy::CrossHost] {
        let r = run_fleet(&fleet, strategy, ClientConfig::default(), &opts.emulator(), 0);
        let split: Vec<String> = r
            .per_project_flops
            .iter()
            .map(|(p, f)| {
                let name = &fleet.projects.iter().find(|q| q.id == *p).unwrap().name;
                format!("{name} {:.1}%", 100.0 * f / r.total_flops.max(1e-9))
            })
            .collect();
        t.row(&[
            strategy.name().to_string(),
            format!("{:.4}", r.fleet_share_violation),
            format!("{:.2}", r.total_flops / 1e12 / 86_400.0),
            split.join(", "),
        ]);
    }
    let rendered = t.render();
    println!("{rendered}");
    println!("expected: cross-host violates the volunteer's 50/50 intent far less,");
    println!("at equal (or better) total throughput.");

    let path = bce_bench::figures_dir().join("fleet_study.csv");
    if save_text(&path, &t.to_csv()).is_ok() {
        println!("wrote {}", path.display());
    }
    opts.write_json(&[("fleet_study", &t)]);
}

//! Ablation benches for the design choices DESIGN.md calls out. These use
//! Criterion's timing harness, but the interesting output is printed once
//! per group: the figures-of-merit deltas between the ablated variants.
//!
//! * checkpoint period (and never-checkpointing apps) vs. wasted fraction,
//! * runtime-estimate error vs. wasted fraction,
//! * scheduling-period granularity vs. runtime cost,
//! * deadline-order heuristics (EDF / LLF / deadline-density) on a
//!   multiprocessor (§6.2: "EDF is optimal for uniprocessors but not
//!   multiprocessors").

use bce_client::{ClientConfig, DeadlineOrder, JobSchedPolicy};
use bce_core::{Emulator, EmulatorConfig, Scenario, ScenarioBuilder};
use bce_scenarios::scenario1;
use bce_types::{AppClass, EstErrorModel, Hardware, Preferences, ProjectSpec, SimDuration};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::sync::Once;

fn one_day() -> EmulatorConfig {
    EmulatorConfig { duration: SimDuration::from_days(1.0), ..Default::default() }
}

/// A contended scenario where preemption (and hence checkpointing)
/// matters: tight jobs keep preempting loose ones.
fn contended(checkpoint: Option<f64>, est_error: EstErrorModel) -> Scenario {
    ScenarioBuilder::new("ablation", Hardware::cpu_only(1, 1e9))
        .seed(21)
        .prefs(Preferences {
            work_buf_min: SimDuration::from_secs(2000.0),
            work_buf_extra: SimDuration::from_secs(2000.0),
            ..Default::default()
        })
        .project(
            ProjectSpec::new(0, "tight", 100.0).with_app(
                AppClass::cpu(0, SimDuration::from_secs(1000.0), SimDuration::from_secs(1800.0))
                    .with_cv(0.1)
                    .with_est_error(est_error),
            ),
        )
        .project(
            ProjectSpec::new(1, "loose", 100.0).with_app(
                AppClass::cpu(1, SimDuration::from_secs(3000.0), SimDuration::from_hours(24.0))
                    .with_cv(0.1)
                    .with_checkpoint(checkpoint.map(SimDuration::from_secs))
                    .with_est_error(est_error),
            ),
        )
        .build_unchecked()
}

static PRINT_ONCE: Once = Once::new();

fn print_merit_deltas() {
    PRINT_ONCE.call_once(|| {
        println!("\n=== ablation figures of merit (1 emulated day) ===");
        for (label, cp) in [
            ("checkpoint 60s", Some(60.0)),
            ("checkpoint 600s", Some(600.0)),
            ("checkpoint 3600s", Some(3600.0)),
            ("no checkpointing", None),
        ] {
            let r = Emulator::new(
                contended(cp, EstErrorModel::Exact),
                ClientConfig::default(),
                one_day(),
            )
            .run();
            println!(
                "  {label:<18} wasted={:.4} jobs={}",
                r.merit.wasted_fraction, r.jobs_completed
            );
        }
        for (label, e) in [
            ("estimates exact", EstErrorModel::Exact),
            ("estimates 2x over", EstErrorModel::Systematic { factor: 2.0 }),
            ("estimates 2x under", EstErrorModel::Systematic { factor: 0.5 }),
            ("estimates lognormal", EstErrorModel::LogNormal { sigma: 0.5 }),
        ] {
            let r =
                Emulator::new(contended(Some(60.0), e), ClientConfig::default(), one_day()).run();
            println!(
                "  {label:<18} wasted={:.4} rpcs/job={:.3}",
                r.merit.wasted_fraction, r.merit.rpcs_per_job
            );
        }
        for order in [DeadlineOrder::Edf, DeadlineOrder::Llf, DeadlineOrder::Density] {
            let pol = JobSchedPolicy { deadline_order: order, ..JobSchedPolicy::GLOBAL };
            let cfg = ClientConfig { sched_policy: pol, ..Default::default() };
            let mut s = contended(Some(60.0), EstErrorModel::Exact);
            s.hardware = Hardware::cpu_only(4, 1e9); // multiprocessor
            let r = Emulator::new(s, cfg, one_day()).run();
            println!(
                "  {:<18} wasted={:.4} share_viol={:.4}",
                pol.name(),
                r.merit.wasted_fraction,
                r.merit.share_violation
            );
        }
        println!();
    });
}

fn bench_ablations(c: &mut Criterion) {
    print_merit_deltas();

    let mut g = c.benchmark_group("ablations");
    g.sample_size(10);

    // Scheduling-period granularity: runtime cost of finer decisions.
    for period in [60.0, 600.0, 3600.0] {
        g.bench_function(format!("sched_period_{period}s"), |b| {
            let cfg = EmulatorConfig {
                duration: SimDuration::from_days(1.0),
                sched_period: SimDuration::from_secs(period),
                ..Default::default()
            };
            b.iter(|| {
                let em = Emulator::new(
                    scenario1(SimDuration::from_secs(1500.0)),
                    ClientConfig::default(),
                    cfg.clone(),
                );
                black_box(em.run())
            })
        });
    }

    // Checkpoint handling cost (rollback bookkeeping).
    for (label, cp) in [("with_checkpoints", Some(60.0)), ("no_checkpoints", None)] {
        g.bench_function(format!("run_{label}"), |b| {
            b.iter(|| {
                let em = Emulator::new(
                    contended(cp, EstErrorModel::Exact),
                    ClientConfig::default(),
                    one_day(),
                );
                black_box(em.run())
            })
        });
    }

    g.finish();
}

criterion_group!(benches, bench_ablations);
criterion_main!(benches);

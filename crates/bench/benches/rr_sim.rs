//! Round-robin simulation cost vs. queue depth. The RR simulation runs at
//! every scheduling decision (§3.2), so its cost bounds emulator speed —
//! especially in many-project scenarios like Scenario 4.

use bce_avail::HostRunState;
use bce_client::{
    rr_simulate, rr_simulate_into, rr_simulate_reference, Client, ClientConfig, RrJob, RrOutcome,
    RrPlatform, RrScratch,
};
use bce_sim::Rng;
use bce_types::{
    AppId, Hardware, JobId, JobSpec, Preferences, ProcMap, ProcType, ProjectId, ResourceUsage,
    SimDuration, SimTime,
};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn make_jobs(njobs: usize, nprojects: usize, rng: &mut Rng) -> Vec<RrJob> {
    (0..njobs)
        .map(|i| {
            let gpu = i % 5 == 0;
            RrJob {
                id: JobId(i as u64),
                project: ProjectId((i % nprojects) as u32),
                proc_type: if gpu { ProcType::NvidiaGpu } else { ProcType::Cpu },
                instances: 1.0,
                remaining: SimDuration::from_secs(rng.range(100.0, 5000.0)),
                deadline: SimTime::from_secs(rng.range(5_000.0, 100_000.0)),
            }
        })
        .collect()
}

fn bench_rr(c: &mut Criterion) {
    let mut g = c.benchmark_group("rr_sim");
    for (njobs, nprojects) in [(8usize, 2usize), (32, 4), (128, 20), (512, 50)] {
        let mut rng = Rng::from_seed(42);
        let jobs = make_jobs(njobs, nprojects, &mut rng);
        let mut ninstances = ProcMap::zero();
        ninstances[ProcType::Cpu] = 4.0;
        ninstances[ProcType::NvidiaGpu] = 1.0;
        let platform = RrPlatform {
            now: SimTime::ZERO,
            ninstances,
            on_frac: 1.0,
            shares: (0..nprojects).map(|p| (ProjectId(p as u32), 1.0)).collect(),
        };
        g.bench_with_input(
            BenchmarkId::new("jobs_projects", format!("{njobs}x{nprojects}")),
            &jobs,
            |b, jobs| {
                b.iter(|| {
                    black_box(rr_simulate(&platform, black_box(jobs), SimDuration::from_hours(2.0)))
                })
            },
        );
    }
    g.finish();
}

/// Scratch-vs-alloc: the same simulation through the per-call-allocating
/// entry points (`simulate`, `simulate_reference`) and the reusable-scratch
/// fast path (`simulate_into`), at queue depths bracketing real workloads.
fn bench_scratch_vs_alloc(c: &mut Criterion) {
    let mut g = c.benchmark_group("rr_sim_scratch_vs_alloc");
    for njobs in [10usize, 100, 1000] {
        let mut rng = Rng::from_seed(7);
        let nprojects = (njobs / 8).clamp(2, 40);
        let jobs = make_jobs(njobs, nprojects, &mut rng);
        let mut ninstances = ProcMap::zero();
        ninstances[ProcType::Cpu] = 4.0;
        ninstances[ProcType::NvidiaGpu] = 1.0;
        let platform = RrPlatform {
            now: SimTime::ZERO,
            ninstances,
            on_frac: 1.0,
            shares: (0..nprojects).map(|p| (ProjectId(p as u32), 1.0)).collect(),
        };
        let window = SimDuration::from_hours(2.0);
        g.bench_with_input(BenchmarkId::new("reference", njobs), &jobs, |b, jobs| {
            b.iter(|| black_box(rr_simulate_reference(&platform, black_box(jobs), window)))
        });
        g.bench_with_input(BenchmarkId::new("alloc", njobs), &jobs, |b, jobs| {
            b.iter(|| black_box(rr_simulate(&platform, black_box(jobs), window)))
        });
        g.bench_with_input(BenchmarkId::new("scratch", njobs), &jobs, |b, jobs| {
            let mut scratch = RrScratch::new();
            let mut out = RrOutcome::default();
            b.iter(|| {
                rr_simulate_into(&platform, black_box(jobs), window, &mut scratch, &mut out);
                black_box(out.finish.len())
            })
        });
    }
    g.finish();
}

fn bench_client(njobs: usize) -> Client {
    let nprojects = (njobs / 8).clamp(2, 40) as u32;
    let mut c = Client::new(
        Hardware::cpu_only(4, 1e9).with_group(ProcType::NvidiaGpu, 1, 1e10).with_vram(4e9),
        Preferences::default(),
        (0..nprojects)
            .map(|p| {
                Client::project(p, format!("p{p}"), 1.0, &[ProcType::Cpu, ProcType::NvidiaGpu])
            })
            .collect(),
        ClientConfig::default(),
    );
    let mut rng = Rng::from_seed(11);
    c.add_jobs(
        (0..njobs)
            .map(|i| JobSpec {
                id: JobId(i as u64),
                project: ProjectId(i as u32 % nprojects),
                app: AppId(0),
                usage: if i % 5 == 0 {
                    ResourceUsage::gpu(ProcType::NvidiaGpu, 1.0, 0.1)
                } else {
                    ResourceUsage::one_cpu()
                },
                duration: SimDuration::from_secs(rng.range(100.0, 5000.0)),
                duration_est: SimDuration::from_secs(rng.range(100.0, 5000.0)),
                latency_bound: SimDuration::from_secs(rng.range(5_000.0, 100_000.0)),
                checkpoint_period: Some(SimDuration::from_secs(60.0)),
                working_set_bytes: 1e8,
                input_bytes: 0.0,
                output_bytes: 0.0,
                received: SimTime::ZERO,
            })
            .collect(),
    );
    c
}

/// Cached-vs-uncached: repeated same-instant queries through the client's
/// generation-keyed snapshot cache (`rr_refresh`, hits after the first)
/// against a fresh full simulation per query (`rr_simulate`) — the
/// before/after of the decision-point hot path.
fn bench_cached_vs_uncached(c: &mut Criterion) {
    let mut g = c.benchmark_group("rr_sim_cached_vs_uncached");
    let rs = HostRunState { can_compute: true, can_gpu: true, net_up: true, user_active: false };
    for njobs in [10usize, 100, 1000] {
        let client = bench_client(njobs);
        g.bench_with_input(BenchmarkId::new("uncached", njobs), &client, |b, client| {
            b.iter(|| black_box(client.rr_simulate(SimTime::ZERO, rs, 1.0)))
        });
        let mut client = bench_client(njobs);
        client.rr_refresh(SimTime::ZERO, rs, 1.0); // prime: every iter is a hit
        g.bench_function(BenchmarkId::new("cached", njobs), |b| {
            b.iter(|| {
                client.rr_refresh(SimTime::ZERO, rs, 1.0);
                black_box(client.rr_snapshot().finish.len())
            })
        });
    }
    g.finish();
}

/// A client sized for the dirty-group bench: `ndirty` CPU instances over
/// 16 projects and 128 very long jobs, so `reschedule` keeps `ndirty`
/// tasks (and therefore `ndirty` distinct `(proc type, project)` groups)
/// running, and neither completions nor deadline misses perturb the
/// queue over millions of bench iterations.
fn dirty_bench_client(ndirty: u32) -> Client {
    let nprojects = 16u32;
    let mut c = Client::new(
        Hardware::cpu_only(ndirty, 1e9),
        Preferences::default(),
        (0..nprojects)
            .map(|p| Client::project(p, format!("p{p}"), 1.0, &[ProcType::Cpu]))
            .collect(),
        ClientConfig::default(),
    );
    let mut rng = Rng::from_seed(23);
    c.add_jobs(
        (0..128)
            .map(|i| JobSpec {
                id: JobId(i as u64),
                project: ProjectId(i as u32 % nprojects),
                app: AppId(0),
                usage: ResourceUsage::one_cpu(),
                duration: SimDuration::from_secs(rng.range(1e7, 2e7)),
                duration_est: SimDuration::from_secs(rng.range(1e7, 2e7)),
                latency_bound: SimDuration::from_secs(1e8),
                checkpoint_period: Some(SimDuration::from_secs(60.0)),
                working_set_bytes: 1e8,
                input_bytes: 0.0,
                output_bytes: 0.0,
                received: SimTime::ZERO,
            })
            .collect(),
    );
    c
}

/// Incremental refresh vs. full re-simulation vs. the reference oracle,
/// per decision point, with 1 / 4 / 16 groups dirtied between queries.
/// Each "incremental"/"full_resim" iteration advances running tasks by a
/// small step (progress dirt on every running group) and then asks for
/// the snapshot: the ladder serves the retained outcome until the frozen
/// window expires (then re-anchors with one real run), while "full_resim"
/// re-simulates every query and "reference" pays the original allocating
/// oracle on an equivalent queue. The incremental bars should be flat in
/// the dirty-group count; the full/reference bars scale with queue size.
fn bench_incremental_refresh(c: &mut Criterion) {
    let mut g = c.benchmark_group("rr_sim_incremental");
    let rs = HostRunState { can_compute: true, can_gpu: true, net_up: true, user_active: false };
    let step = SimDuration::from_secs(0.05);
    for ndirty in [1u32, 4, 16] {
        let mut client = dirty_bench_client(ndirty);
        client.reschedule(SimTime::ZERO, rs, 1.0);
        client.rr_refresh(SimTime::ZERO, rs, 1.0);
        let mut now = SimTime::ZERO;
        g.bench_function(BenchmarkId::new("incremental", ndirty), |b| {
            b.iter(|| {
                now += step;
                client.advance(now, rs);
                client.rr_refresh(now, rs, 1.0);
                black_box(client.rr_snapshot().finish.len())
            })
        });

        let mut client = dirty_bench_client(ndirty);
        client.reschedule(SimTime::ZERO, rs, 1.0);
        let mut now = SimTime::ZERO;
        g.bench_function(BenchmarkId::new("full_resim", ndirty), |b| {
            b.iter(|| {
                now += step;
                client.advance(now, rs);
                black_box(client.rr_simulate(now, rs, 1.0))
            })
        });
    }
    // The pre-fast-path oracle on an equivalent 128-job queue: one bar,
    // the dirty-group count is irrelevant to a from-scratch simulation.
    let mut rng = Rng::from_seed(23);
    let jobs = make_jobs(128, 16, &mut rng);
    let mut ninstances = ProcMap::zero();
    ninstances[ProcType::Cpu] = 4.0;
    let platform = RrPlatform {
        now: SimTime::ZERO,
        ninstances,
        on_frac: 1.0,
        shares: (0..16).map(|p| (ProjectId(p as u32), 1.0)).collect(),
    };
    g.bench_function(BenchmarkId::new("reference", 128), |b| {
        b.iter(|| black_box(rr_simulate_reference(&platform, &jobs, SimDuration::from_hours(2.0))))
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_rr,
    bench_scratch_vs_alloc,
    bench_cached_vs_uncached,
    bench_incremental_refresh
);
criterion_main!(benches);

//! Round-robin simulation cost vs. queue depth. The RR simulation runs at
//! every scheduling decision (§3.2), so its cost bounds emulator speed —
//! especially in many-project scenarios like Scenario 4.

use bce_client::{rr_simulate, RrJob, RrPlatform};
use bce_sim::Rng;
use bce_types::{JobId, ProcMap, ProcType, ProjectId, SimDuration, SimTime};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn make_jobs(njobs: usize, nprojects: usize, rng: &mut Rng) -> Vec<RrJob> {
    (0..njobs)
        .map(|i| {
            let gpu = i % 5 == 0;
            RrJob {
                id: JobId(i as u64),
                project: ProjectId((i % nprojects) as u32),
                proc_type: if gpu { ProcType::NvidiaGpu } else { ProcType::Cpu },
                instances: 1.0,
                remaining: SimDuration::from_secs(rng.range(100.0, 5000.0)),
                deadline: SimTime::from_secs(rng.range(5_000.0, 100_000.0)),
            }
        })
        .collect()
}

fn bench_rr(c: &mut Criterion) {
    let mut g = c.benchmark_group("rr_sim");
    for (njobs, nprojects) in [(8usize, 2usize), (32, 4), (128, 20), (512, 50)] {
        let mut rng = Rng::from_seed(42);
        let jobs = make_jobs(njobs, nprojects, &mut rng);
        let mut ninstances = ProcMap::zero();
        ninstances[ProcType::Cpu] = 4.0;
        ninstances[ProcType::NvidiaGpu] = 1.0;
        let platform = RrPlatform {
            now: SimTime::ZERO,
            ninstances,
            on_frac: 1.0,
            shares: (0..nprojects).map(|p| (ProjectId(p as u32), 1.0)).collect(),
        };
        g.bench_with_input(
            BenchmarkId::new("jobs_projects", format!("{njobs}x{nprojects}")),
            &jobs,
            |b, jobs| {
                b.iter(|| {
                    black_box(rr_simulate(&platform, black_box(jobs), SimDuration::from_hours(2.0)))
                })
            },
        );
    }
    g.finish();
}

criterion_group!(benches, bench_rr);
criterion_main!(benches);

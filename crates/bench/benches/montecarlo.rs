//! Population sampling + batch emulation throughput: the §6.2 Monte-Carlo
//! study must scale to thousands of sampled scenarios.

use bce_client::ClientConfig;
use bce_controller::{run_all, RunSpec};
use bce_core::EmulatorConfig;
use bce_scenarios::{PopulationModel, PopulationSampler};
use bce_types::SimDuration;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_montecarlo(c: &mut Criterion) {
    let mut g = c.benchmark_group("montecarlo");
    g.sample_size(10);

    g.bench_function("sample_100_scenarios", |b| {
        b.iter(|| {
            let mut s = PopulationSampler::new(PopulationModel::default(), 7);
            black_box(s.sample_many(100))
        })
    });

    g.bench_function("emulate_8_sampled_hosts_6h", |b| {
        let mut sampler = PopulationSampler::new(PopulationModel::default(), 7);
        let scenarios: Vec<std::sync::Arc<_>> =
            sampler.sample_many(8).into_iter().map(std::sync::Arc::new).collect();
        let emu = std::sync::Arc::new(EmulatorConfig {
            duration: SimDuration::from_hours(6.0),
            ..Default::default()
        });
        b.iter(|| {
            let specs: Vec<RunSpec> = scenarios
                .iter()
                .map(|s| {
                    RunSpec::new(s.name.clone(), s.clone(), ClientConfig::default())
                        .with_emulator(emu.clone())
                })
                .collect();
            black_box(run_all(specs, 0))
        })
    });

    g.finish();
}

criterion_group!(benches, bench_montecarlo);
criterion_main!(benches);

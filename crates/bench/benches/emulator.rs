//! Full-emulation throughput: simulated days per wall second for each
//! paper scenario under the default policy set. This is the end-to-end
//! number a BCE user cares about (the web form must answer in seconds).

use bce_client::ClientConfig;
use bce_core::{Emulator, EmulatorConfig};
use bce_scenarios::{scenario1, scenario2, scenario3, scenario4};
use bce_types::SimDuration;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_emulator(c: &mut Criterion) {
    let mut g = c.benchmark_group("emulator");
    g.sample_size(10);
    let cfg = EmulatorConfig { duration: SimDuration::from_days(1.0), ..Default::default() };

    let scenarios = [
        ("scenario1", scenario1(SimDuration::from_secs(1500.0))),
        ("scenario2", scenario2()),
        ("scenario3", scenario3()),
        ("scenario4", scenario4()),
    ];
    for (name, scenario) in scenarios {
        g.bench_function(format!("{name}_1day"), |b| {
            b.iter(|| {
                let em = Emulator::new(
                    black_box(scenario.clone()),
                    ClientConfig::default(),
                    cfg.clone(),
                );
                black_box(em.run())
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_emulator);
criterion_main!(benches);

//! DES engine throughput: event queue push/pop under mixed workloads.
//! The emulator pushes a handful of events per decision point; this bench
//! bounds how much of the wall time the queue itself can consume.

use bce_sim::{EventQueue, Rng};
use bce_types::SimTime;
use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use std::hint::black_box;

fn bench_queue(c: &mut Criterion) {
    let mut g = c.benchmark_group("event_queue");

    g.throughput(Throughput::Elements(10_000));
    g.bench_function("push_pop_ordered_10k", |b| {
        b.iter_batched(
            EventQueue::<u64>::new,
            |mut q| {
                for i in 0..10_000u64 {
                    q.push(SimTime::from_secs(i as f64), i);
                }
                while let Some(e) = q.pop() {
                    black_box(e);
                }
            },
            BatchSize::SmallInput,
        )
    });

    g.throughput(Throughput::Elements(10_000));
    g.bench_function("push_pop_random_10k", |b| {
        let mut rng = Rng::from_seed(1);
        let times: Vec<f64> = (0..10_000).map(|_| rng.range(0.0, 1e6)).collect();
        b.iter_batched(
            EventQueue::<u64>::new,
            |mut q| {
                for (i, &t) in times.iter().enumerate() {
                    q.push(SimTime::from_secs(t), i as u64);
                }
                while let Some(e) = q.pop() {
                    black_box(e);
                }
            },
            BatchSize::SmallInput,
        )
    });

    // The emulator's actual pattern: a small rolling window of events.
    g.throughput(Throughput::Elements(100_000));
    g.bench_function("rolling_window_100k", |b| {
        let mut rng = Rng::from_seed(2);
        let deltas: Vec<f64> = (0..100_000).map(|_| rng.range(0.1, 120.0)).collect();
        b.iter(|| {
            let mut q = EventQueue::new();
            let mut now = 0.0;
            for (i, &d) in deltas.iter().enumerate() {
                q.push(SimTime::from_secs(now + d), i);
                if q.len() > 8 {
                    if let Some((t, e)) = q.pop() {
                        now = t.secs();
                        black_box(e);
                    }
                }
            }
            black_box(q.len())
        })
    });

    g.finish();
}

criterion_group!(benches, bench_queue);
criterion_main!(benches);

//! State-file ingest throughput: parse + render of a realistic
//! `client_state.xml` (the web-form path, §4.3).

use bce_scenarios::{doc_from_scenario, scenario4};
use bce_statefile::ClientStateDoc;
use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;

fn bench_statefile(c: &mut Criterion) {
    let doc = doc_from_scenario(&scenario4());
    let xml = doc.render();
    let mut g = c.benchmark_group("statefile");
    g.throughput(Throughput::Bytes(xml.len() as u64));
    g.bench_function("parse_20_project_state", |b| {
        b.iter(|| black_box(ClientStateDoc::parse_str(black_box(&xml)).unwrap()))
    });
    g.bench_function("render_20_project_state", |b| b.iter(|| black_box(doc.render())));
    g.bench_function("roundtrip", |b| {
        b.iter(|| {
            let d = ClientStateDoc::parse_str(black_box(&xml)).unwrap();
            black_box(d.render())
        })
    });
    g.finish();
}

criterion_group!(benches, bench_statefile);
criterion_main!(benches);

//! The paper's alpha-tester workflow (§4.3): a volunteer pastes their
//! `client_state.xml` into a web form; BCE rebuilds their scenario and
//! replays it deterministically so developers can investigate a reported
//! scheduling anomaly under a debugger.
//!
//! ```text
//! cargo run --release --example statefile_import [path/to/client_state.xml]
//! ```

use boinc_policy_emu::client::ClientConfig;
use boinc_policy_emu::core::{Emulator, EmulatorConfig};
use boinc_policy_emu::scenarios::scenario_from_state_file;
use boinc_policy_emu::sim::Level;
use boinc_policy_emu::types::SimDuration;

/// What a volunteer's pasted state file looks like.
const SAMPLE_STATE: &str = r#"<?xml version="1.0"?>
<client_state>
  <host_info>
    <p_ncpus>2</p_ncpus>
    <p_fpops>1.5e9</p_fpops>
    <nvidia_gpus>1</nvidia_gpus>
    <nvidia_fpops>2e10</nvidia_fpops>
    <m_nbytes>4e9</m_nbytes>
  </host_info>
  <global_preferences>
    <work_buf_min_days>0.02</work_buf_min_days>
    <work_buf_additional_days>0.02</work_buf_additional_days>
    <run_if_user_active>1</run_if_user_active>
    <run_gpu_if_user_active>0</run_gpu_if_user_active>
  </global_preferences>
  <project>
    <project_name>seti</project_name>
    <resource_share>100</resource_share>
    <app>
      <name>multibeam</name>
      <runtime_mean>4000</runtime_mean>
      <runtime_cv>0.15</runtime_cv>
      <latency_bound>120000</latency_bound>
    </app>
    <app>
      <name>multibeam_cuda</name>
      <ngpus>1</ngpus>
      <avg_ncpus>0.1</avg_ncpus>
      <runtime_mean>900</runtime_mean>
      <latency_bound>120000</latency_bound>
    </app>
  </project>
  <project>
    <project_name>einstein</project_name>
    <resource_share>50</resource_share>
    <app>
      <name>gw_search</name>
      <runtime_mean>14000</runtime_mean>
      <latency_bound>604800</latency_bound>
    </app>
  </project>
  <time_stats>
    <on_frac>0.85</on_frac>
    <active_frac>0.2</active_frac>
  </time_stats>
  <seed>20110516</seed>
</client_state>"#;

fn main() {
    // Accept a path for a real state file; otherwise replay the sample.
    let xml = match std::env::args().nth(1) {
        Some(path) => {
            std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("cannot read {path}: {e}"))
        }
        None => SAMPLE_STATE.to_string(),
    };

    let scenario = match scenario_from_state_file(&xml, "volunteer-report") {
        Ok(s) => s,
        Err(e) => {
            eprintln!("state file rejected: {e}");
            std::process::exit(1);
        }
    };
    scenario.validate().expect("imported scenario must validate");
    println!(
        "imported scenario: {} projects, host {:.1} GFLOPS, seed {}",
        scenario.projects.len(),
        scenario.hardware.total_peak_flops() / 1e9,
        scenario.seed
    );

    // Replay with the scheduling message log enabled — the log is what a
    // developer reads when chasing a reported anomaly.
    let cfg = EmulatorConfig {
        duration: SimDuration::from_days(2.0),
        log_capacity: 200_000,
        log_level: Level::Info,
        ..Default::default()
    };
    let result = Emulator::new(scenario, ClientConfig::default(), cfg).run();
    println!("{result}");

    println!("last scheduling decisions:");
    let entries = result.log.entries();
    for e in entries.iter().rev().take(12).rev() {
        println!("  {e}");
    }
    println!("(replaying with the same seed reproduces this log bit-for-bit)");
}

//! Compare every job-scheduling × job-fetch policy combination on one
//! scenario — the §4.3 controller workflow ("compare scheduling policies
//! across one or more scenarios").
//!
//! ```text
//! cargo run --release --example policy_compare
//! ```

use boinc_policy_emu::client::{ClientConfig, FetchPolicy, JobSchedPolicy};
use boinc_policy_emu::controller::{compare_policies, Metric};
use boinc_policy_emu::core::EmulatorConfig;
use boinc_policy_emu::scenarios::scenario2;
use boinc_policy_emu::types::SimDuration;

fn main() {
    let mut policies = Vec::new();
    for sched in [JobSchedPolicy::WRR, JobSchedPolicy::LOCAL, JobSchedPolicy::GLOBAL] {
        for fetch in [FetchPolicy::Orig, FetchPolicy::Hysteresis] {
            policies.push((
                format!("{}+{}", sched.name(), fetch.name()),
                ClientConfig { sched_policy: sched, fetch_policy: fetch, ..Default::default() },
            ));
        }
    }

    let emulator = EmulatorConfig { duration: SimDuration::from_days(5.0), ..Default::default() };
    // Scenario 2 of the paper: 4 CPUs + 1 GPU, one CPU-only project, one
    // mixed project.
    let comparison = compare_policies(&scenario2(), &policies, &emulator, 0);

    println!("All policy combinations on scenario 2 (5 emulated days):\n");
    println!("{}", comparison.table().render());
    println!("{}", comparison.bars(Metric::ShareViolation, 48));
    println!("{}", comparison.bars(Metric::RpcsPerJob, 48));

    // The §4.2 note: metrics conflict; pick a subjective weighting to rank.
    let weights = [0.3, 0.3, 0.2, 0.1, 0.1]; // idle, wasted, share, monotony, rpcs
    let mut ranked: Vec<(String, f64)> = comparison
        .results
        .iter()
        .map(|(label, r)| (label.clone(), r.merit.weighted(weights)))
        .collect();
    ranked.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap());
    println!("ranking under weights {weights:?} (lower is better):");
    for (i, (label, score)) in ranked.iter().enumerate() {
        println!("  {}. {label}  {score:.4}", i + 1);
    }
}

//! A GPU desktop with realistic availability: the machine is powered most
//! of the time, the user works on it in bursts (which suspends the GPU —
//! the default preference), and computing is disallowed overnight.
//!
//! Demonstrates: GPU/CPU mixed projects, availability processes, daily
//! compute windows, and the per-instance timeline visualization.
//!
//! ```text
//! cargo run --release --example gpu_desktop
//! ```

use boinc_policy_emu::avail::{AvailSpec, OnOffSpec};
use boinc_policy_emu::client::ClientConfig;
use boinc_policy_emu::core::{render_timeline, Emulator, EmulatorConfig, ScenarioBuilder};
use boinc_policy_emu::types::{
    AppClass, DailyWindow, Hardware, Preferences, ProcType, ProjectSpec, SimDuration,
};

fn main() {
    // 8 CPUs + a fast NVIDIA GPU.
    let hardware =
        Hardware::cpu_only(8, 2e9).with_group(ProcType::NvidiaGpu, 1, 5e10).with_mem(16e9);

    // The user's preferences: no computing between 23:00 and 07:00, GPU
    // paused while they're at the keyboard.
    let prefs = Preferences {
        compute_window: Some(DailyWindow::new(7.0, 23.0)),
        gpu_if_user_active: false,
        run_if_user_active: true,
        ..Default::default()
    };

    // The machine is on ~90% of the time in multi-hour stretches; the
    // user is active ~25% of the time in ~30-minute bursts.
    let avail = AvailSpec {
        host: OnOffSpec::duty_cycle(0.9, SimDuration::from_hours(20.0)),
        user_active: OnOffSpec::duty_cycle(0.25, SimDuration::from_hours(2.0)),
        network: OnOffSpec::AlwaysOn,
    };

    let scenario = ScenarioBuilder::new("gpu-desktop", hardware)
        .seed(7)
        .prefs(prefs)
        .avail(avail)
        .project(ProjectSpec::new(0, "gpugrid", 100.0).with_app(AppClass::gpu(
            0,
            ProcType::NvidiaGpu,
            SimDuration::from_hours(2.0),
            SimDuration::from_days(2.0),
        )))
        .project(ProjectSpec::new(1, "climate", 100.0).with_app(AppClass::cpu(
            1,
            SimDuration::from_hours(8.0),
            SimDuration::from_days(7.0),
        )))
        .build()
        .expect("valid scenario");

    let cfg = EmulatorConfig {
        duration: SimDuration::from_days(3.0),
        record_timeline: true,
        ..Default::default()
    };
    let result = Emulator::new(scenario, ClientConfig::default(), cfg).run();
    println!("{result}");
    println!("host was available {:.1}% of the emulated period", result.available_fraction * 100.0);

    // The Figure-2-style visualization: rows are processor instances,
    // columns are time; letters are projects, '.' idle, '-' unavailable.
    if let Some(timeline) = &result.timeline {
        println!("{}", render_timeline(timeline, 96));
    }
}

//! The paper's motivating workflow (§1, §4.3): a volunteer reports a
//! scheduling anomaly — "one of my projects never runs!" — and a developer
//! reproduces and diagnoses it deterministically in the emulator.
//!
//! The anomaly staged here is real — and its cause is not the obvious
//! one. A project with tight deadlines keeps missing them and the
//! volunteer perceives "my machine works for nothing". The first guess
//! (the WRR scheduler interleaving projects) turns out to be wrong: the
//! message log shows the work-fetch policy pulling 15 tight-deadline jobs
//! in a single RPC to fill the volunteer's 4-hour buffer, and no
//! scheduling policy can save a 1500-second-deadline job that is 14th in
//! line. The fix is the buffer, not the scheduler — exactly the kind of
//! diagnosis the emulator exists to make cheap (§4.3).
//!
//! ```text
//! cargo run --release --example anomaly_debugging
//! ```

use boinc_policy_emu::client::{ClientConfig, FetchPolicy, JobSchedPolicy};
use boinc_policy_emu::core::{
    render_timeline, Emulator, EmulatorConfig, Scenario, ScenarioBuilder,
};
use boinc_policy_emu::sim::Level;
use boinc_policy_emu::types::{AppClass, Hardware, Preferences, ProjectSpec, SimDuration};

fn volunteer_scenario(buf: SimDuration) -> Scenario {
    ScenarioBuilder::new("anomaly-report", Hardware::cpu_only(1, 1e9))
        .seed(20110516) // from the volunteer's state file: replay exactly
        .prefs(Preferences {
            // The volunteer keeps a deep buffer "so the machine never runs dry".
            work_buf_min: buf,
            work_buf_extra: buf,
            ..Default::default()
        })
        .project(ProjectSpec::new(0, "pulsar_search", 100.0).with_app(
            // Tight latency bound: 1500 s for 1000 s jobs.
            AppClass::cpu(0, SimDuration::from_secs(1000.0), SimDuration::from_secs(1500.0)),
        ))
        .project(ProjectSpec::new(1, "protein_fold", 100.0).with_app(AppClass::cpu(
            1,
            SimDuration::from_secs(1000.0),
            SimDuration::from_days(1.0),
        )))
        .build()
        .expect("valid scenario")
}

fn run(policy: JobSchedPolicy, buf: SimDuration) -> boinc_policy_emu::core::EmulationResult {
    let cfg = EmulatorConfig {
        duration: SimDuration::from_days(1.0),
        record_timeline: true,
        log_capacity: 50_000,
        log_level: Level::Info,
        ..Default::default()
    };
    let client = ClientConfig {
        sched_policy: policy,
        fetch_policy: FetchPolicy::Hysteresis,
        ..Default::default()
    };
    Emulator::new(volunteer_scenario(buf), client, cfg).run()
}

fn main() {
    let deep = SimDuration::from_hours(2.0);
    let shallow = SimDuration::from_mins(5.0);

    // --- Step 1: reproduce exactly what the volunteer's client ran. ---
    let broken = run(JobSchedPolicy::WRR, deep);
    println!("reproduction (JS-WRR, 4 h work buffer — the volunteer's setup):\n{broken}");
    println!(
        ">>> anomaly confirmed: pulsar_search missed {} of {} jobs (wasted {:.0}%)\n",
        broken.projects[0].jobs_missed_deadline,
        broken.projects[0].jobs_completed,
        broken.merit.wasted_fraction * 100.0,
    );

    // --- Step 2: test the obvious hypothesis — "the scheduler is dumb". ---
    let edf_only = run(JobSchedPolicy::GLOBAL, deep);
    println!(
        "hypothesis 1: deadline-aware scheduling (JS-GLOBAL), same buffer -> wasted {:.0}% (no fix!)\n",
        edf_only.merit.wasted_fraction * 100.0,
    );

    // --- Step 3: read the log; the real culprit is work fetch. ---
    println!("scheduling log, first fetch (the smoking gun):");
    for e in broken.log.entries().iter().take(2) {
        println!("  {e}");
    }
    println!("diagnosis: one RPC pulled ~15 tight-deadline jobs to fill the 4 h buffer.");
    println!("A 1500 s-deadline job that is 14th in a serial queue is dead on arrival —");
    println!("no scheduling policy can save it. The buffer is the bug.\n");

    // --- Step 4: verify the real fix (shallow buffer + EDF). ---
    let fixed = run(JobSchedPolicy::GLOBAL, shallow);
    println!("fix: 5 min buffer + JS-GLOBAL:\n{fixed}");
    println!(
        ">>> fixed: pulsar_search missed {} of {} jobs; wasted {:.1}% (was {:.0}%)",
        fixed.projects[0].jobs_missed_deadline,
        fixed.projects[0].jobs_completed,
        fixed.merit.wasted_fraction * 100.0,
        broken.merit.wasted_fraction * 100.0,
    );

    // --- Step 5: the before/after timelines, Figure-2 style. ---
    if let (Some(a), Some(b)) = (&broken.timeline, &fixed.timeline) {
        println!("\nbroken timeline (A = pulsar_search, B = protein_fold):");
        println!("{}", render_timeline(a, 96));
        println!("fixed timeline:");
        println!("{}", render_timeline(b, 96));
    }
}

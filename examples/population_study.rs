//! Monte-Carlo population study (§6.2 future work): sample a synthetic
//! volunteer-host population and evaluate policy combinations over all of
//! it, instead of over hand-picked scenarios.
//!
//! ```text
//! cargo run --release --example population_study
//! ```

use boinc_policy_emu::client::{ClientConfig, FetchPolicy, JobSchedPolicy};
use boinc_policy_emu::controller::{population_study, population_table, Metric};
use boinc_policy_emu::core::EmulatorConfig;
use boinc_policy_emu::scenarios::{PopulationModel, PopulationSampler};
use boinc_policy_emu::types::SimDuration;
use std::sync::Arc;

fn main() {
    // 24 hosts drawn from the default population model (log-normal core
    // speeds, 1-8 cores, 20% GPUs, realistic availability duty cycles,
    // 1-6 attached projects). The study shares each scenario by Arc, so
    // evaluating P policies over it clones nothing.
    let mut sampler = PopulationSampler::new(PopulationModel::default(), 2026);
    let scenarios: Vec<Arc<_>> = sampler.sample_many(24).into_iter().map(Arc::new).collect();
    println!(
        "sampled {} hosts: {} with GPUs, {:.1} projects on average\n",
        scenarios.len(),
        scenarios.iter().filter(|s| s.hardware.has_gpu()).count(),
        scenarios.iter().map(|s| s.projects.len()).sum::<usize>() as f64 / scenarios.len() as f64,
    );

    let policies = vec![
        (
            "GLOBAL+HYST".to_string(),
            ClientConfig {
                sched_policy: JobSchedPolicy::GLOBAL,
                fetch_policy: FetchPolicy::Hysteresis,
                ..Default::default()
            },
        ),
        (
            "LOCAL+ORIG".to_string(),
            ClientConfig {
                sched_policy: JobSchedPolicy::LOCAL,
                fetch_policy: FetchPolicy::Orig,
                ..Default::default()
            },
        ),
    ];

    let emulator = EmulatorConfig { duration: SimDuration::from_days(2.0), ..Default::default() };
    let outcomes = population_study(&scenarios, &policies, &emulator, 0);
    println!("{}", population_table(&outcomes).render());

    // Policies should perform well across the *population*, not just on
    // average (§4.1): compare the 95th percentiles.
    for o in &outcomes {
        let rpcs = o.metric(Metric::RpcsPerJob);
        println!(
            "{}: rpcs/job mean {:.3}, p95 {:.3} over {} hosts",
            o.label,
            rpcs.stats.mean(),
            rpcs.p95,
            o.scenarios_run
        );
    }
}

//! Quickstart: build a scenario, emulate ten days of BOINC client
//! behaviour, and read the figures of merit.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use boinc_policy_emu::client::{ClientConfig, FetchPolicy, JobSchedPolicy};
use boinc_policy_emu::core::{Emulator, EmulatorConfig, ScenarioBuilder};
use boinc_policy_emu::types::{AppClass, Hardware, ProjectSpec, SimDuration};

fn main() {
    // A host: 4 CPUs at 2 GFLOPS each.
    let hardware = Hardware::cpu_only(4, 2e9);

    // Two attached projects. Shares are relative weights: "einstein" is
    // entitled to 3x the resources of "rosetta".
    let einstein = ProjectSpec::new(0, "einstein", 300.0).with_app(
        // 1-hour jobs, one CPU each, 1-day latency bound.
        AppClass::cpu(0, SimDuration::from_hours(1.0), SimDuration::from_days(1.0)),
    );
    let rosetta = ProjectSpec::new(1, "rosetta", 100.0).with_app(AppClass::cpu(
        1,
        SimDuration::from_hours(3.0),
        SimDuration::from_days(3.0),
    ));

    let scenario = ScenarioBuilder::new("quickstart", hardware)
        .seed(42)
        .project(einstein)
        .project(rosetta)
        .build()
        .expect("valid scenario");

    // The client's policy configuration: the paper's "current" policies
    // are global (REC) accounting with EDF promotion, plus hysteresis
    // work fetch.
    let client = ClientConfig {
        sched_policy: JobSchedPolicy::GLOBAL,
        fetch_policy: FetchPolicy::Hysteresis,
        ..Default::default()
    };

    // Emulate 10 days (the paper's default period).
    let emulator_cfg =
        EmulatorConfig { duration: SimDuration::from_days(10.0), ..Default::default() };
    let result = Emulator::new(scenario, client, emulator_cfg).run();

    // The full report: figures of merit plus per-project outcomes.
    println!("{result}");

    // Individual metrics are plain fields.
    assert!(result.merit.idle_fraction < 0.05, "the queue should keep all CPUs busy");
    let einstein_report = &result.projects[0];
    println!(
        "einstein received {:.1}% of processing (entitled to 75%)",
        einstein_report.used_frac * 100.0
    );
}

//! Multi-thread and fractional-GPU jobs end-to-end (§2.3: "the number of
//! CPUs J will use ... may be fractional"; GPU instances "may be
//! fractional, meaning that J will use at most that fraction of the GPU's
//! cores and memory").

use boinc_policy_emu::client::ClientConfig;
use boinc_policy_emu::core::{Emulator, EmulatorConfig, ScenarioBuilder};
use boinc_policy_emu::types::{
    AppClass, AppId, EstErrorModel, Hardware, ProcType, ProjectSpec, ResourceUsage, SimDuration,
};

fn cfg(days: f64) -> EmulatorConfig {
    EmulatorConfig { duration: SimDuration::from_days(days), ..Default::default() }
}

fn app_with_usage(id: u32, usage: ResourceUsage, runtime: f64) -> AppClass {
    AppClass {
        id: AppId(id),
        name: format!("app{id}"),
        usage,
        runtime_mean: SimDuration::from_secs(runtime),
        runtime_cv: 0.0,
        est_error: EstErrorModel::Exact,
        latency_bound: SimDuration::from_hours(12.0),
        checkpoint_period: Some(SimDuration::from_secs(60.0)),
        working_set_bytes: 1e8,
        input_bytes: 0.0,
        output_bytes: 0.0,
        weight: 1.0,
        supply: None,
    }
}

#[test]
fn multithread_jobs_fill_the_host() {
    // 2-CPU jobs on a 4-CPU host: two run concurrently, so throughput per
    // wall second matches four single-CPU jobs of the same total work.
    let mt = ScenarioBuilder::new("mt", Hardware::cpu_only(4, 1e9))
        .seed(41)
        .project(ProjectSpec::new(0, "mt", 100.0).with_app(app_with_usage(
            0,
            ResourceUsage::cpus(2.0),
            1000.0,
        )))
        .build_unchecked();
    let r = Emulator::new(mt, ClientConfig::default(), cfg(1.0)).run();
    // 2 concurrent 1000 s jobs => ~172 jobs/day.
    assert!(
        (150..=180).contains(&(r.jobs_completed as i64)),
        "expected ~172 two-CPU jobs, got {}",
        r.jobs_completed
    );
    assert!(r.merit.idle_fraction < 0.05, "idle {:.3}", r.merit.idle_fraction);
}

#[test]
fn three_cpu_jobs_leave_one_cpu_idle() {
    // 3-CPU jobs on a 4-CPU host: only one fits at a time; a quarter of
    // the host idles (no 1-CPU work available to fill the gap).
    let s = ScenarioBuilder::new("odd", Hardware::cpu_only(4, 1e9))
        .seed(43)
        .project(ProjectSpec::new(0, "odd", 100.0).with_app(app_with_usage(
            0,
            ResourceUsage::cpus(3.0),
            1000.0,
        )))
        .build_unchecked();
    let r = Emulator::new(s, ClientConfig::default(), cfg(1.0)).run();
    assert!(
        (r.merit.idle_fraction - 0.25).abs() < 0.03,
        "idle {:.3} (expected ~0.25)",
        r.merit.idle_fraction
    );
}

#[test]
fn mixed_widths_backfill() {
    // A 3-CPU app plus a 1-CPU app from another project: the scheduler
    // backfills the spare CPU, pushing idle close to zero.
    let s = ScenarioBuilder::new("fill", Hardware::cpu_only(4, 1e9))
        .seed(47)
        .project(ProjectSpec::new(0, "wide", 100.0).with_app(app_with_usage(
            0,
            ResourceUsage::cpus(3.0),
            1000.0,
        )))
        .project(ProjectSpec::new(1, "narrow", 100.0).with_app(app_with_usage(
            1,
            ResourceUsage::one_cpu(),
            1000.0,
        )))
        .build_unchecked();
    let r = Emulator::new(s, ClientConfig::default(), cfg(1.0)).run();
    assert!(r.merit.idle_fraction < 0.05, "idle {:.3}", r.merit.idle_fraction);
    // Both projects complete work.
    assert!(r.projects.iter().all(|p| p.jobs_completed > 0));
}

#[test]
fn fractional_gpu_jobs_share_one_board() {
    // Two 0.5-GPU jobs run concurrently on a single GPU.
    let hw = Hardware::cpu_only(2, 1e9).with_group(ProcType::NvidiaGpu, 1, 1e10);
    let s = ScenarioBuilder::new("frac-gpu", hw)
        .seed(53)
        .project(ProjectSpec::new(0, "halfgpu", 100.0).with_app(app_with_usage(
            0,
            ResourceUsage::gpu(ProcType::NvidiaGpu, 0.5, 0.1),
            1000.0,
        )))
        .build_unchecked();
    let r = Emulator::new(s, ClientConfig::default(), cfg(1.0)).run();
    // Two concurrent 1000 s jobs on the GPU => ~172/day.
    assert!(
        (150..=180).contains(&(r.jobs_completed as i64)),
        "expected ~172 half-GPU jobs, got {}",
        r.jobs_completed
    );
}

#[test]
fn oversized_job_never_runs_but_host_survives() {
    // An 8-CPU app on a 4-CPU host can be fetched but never scheduled;
    // the emulator must not spin or crash, and a sane project still works.
    let s = ScenarioBuilder::new("oversize", Hardware::cpu_only(4, 1e9))
        .seed(59)
        .project(ProjectSpec::new(0, "oversize", 100.0).with_app(app_with_usage(
            0,
            ResourceUsage::cpus(8.0),
            1000.0,
        )))
        .project(ProjectSpec::new(1, "sane", 100.0).with_app(app_with_usage(
            1,
            ResourceUsage::one_cpu(),
            1000.0,
        )))
        .build_unchecked();
    let r = Emulator::new(s, ClientConfig::default(), cfg(0.5)).run();
    assert_eq!(r.projects[0].jobs_completed, 0);
    assert!(r.projects[1].jobs_completed > 0);
}

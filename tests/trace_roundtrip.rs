//! Trace-schema round-trip: events emitted by a real emulation, exported
//! as JSONL, must parse back to exactly the records that were emitted.
//! This is the contract `bce trace --jsonl` (and any external consumer of
//! the trace files) relies on.

use boinc_policy_emu::client::ClientConfig;
use boinc_policy_emu::core::{Emulator, EmulatorConfig, FaultConfig, TraceEvent};
use boinc_policy_emu::obs::{parse_jsonl, record_to_json, to_jsonl};
use boinc_policy_emu::scenarios::{scenario1, scenario2};
use boinc_policy_emu::types::SimDuration;

fn traced_cfg(days: f64) -> EmulatorConfig {
    EmulatorConfig {
        duration: SimDuration::from_days(days),
        trace_capacity: 1_000_000,
        ..Default::default()
    }
}

#[test]
fn emitted_trace_round_trips_through_jsonl() {
    let r = Emulator::new(scenario2(), ClientConfig::default(), traced_cfg(1.0)).run();
    let records = r.trace.records();
    assert!(!records.is_empty(), "a day of scenario2 must trace something");
    assert_eq!(r.trace.dropped(), 0, "capacity must hold the whole run");

    let jsonl = to_jsonl(records);
    let parsed = parse_jsonl(&jsonl).expect("export must parse");
    assert_eq!(parsed.len(), records.len());
    for (a, b) in parsed.iter().zip(records) {
        assert_eq!(a, b, "JSONL round-trip must be lossless");
    }
}

#[test]
fn fault_events_round_trip_too() {
    // Crashes/recoveries/lost RPCs/transfer failures only appear under
    // fault injection; make sure those schema variants round-trip as well.
    let mut faults = FaultConfig::with_failure_rate(0.2);
    faults.crash_mtbf = Some(SimDuration::from_hours(4.0));
    let cfg = EmulatorConfig { faults, ..traced_cfg(1.0) };
    let r = Emulator::new(scenario2(), ClientConfig::default(), cfg).run();
    let kinds: std::collections::BTreeSet<&str> =
        r.trace.records().iter().map(|rec| rec.event.kind()).collect();
    assert!(kinds.contains("rpc_lost"), "kinds seen: {kinds:?}");
    assert!(kinds.contains("crashed"), "kinds seen: {kinds:?}");

    let parsed = parse_jsonl(&to_jsonl(r.trace.records())).expect("faulty trace must parse");
    assert_eq!(parsed.len(), r.trace.len());
    for (a, b) in parsed.iter().zip(r.trace.records()) {
        assert_eq!(a, b);
    }
}

#[test]
fn trace_schema_fields_are_wellformed() {
    let r = Emulator::new(
        scenario1(SimDuration::from_secs(1500.0)),
        ClientConfig::default(),
        traced_cfg(0.5),
    )
    .run();
    let mut last_seq = None;
    for rec in r.trace.records() {
        // Sequence numbers strictly increase; time never runs backwards.
        if let Some(prev) = last_seq {
            assert!(rec.seq > prev, "seq must be strictly increasing");
        }
        last_seq = Some(rec.seq);
        assert!(TraceEvent::KINDS.contains(&rec.event.kind()));
        assert!(TraceEvent::COMPONENTS.contains(&rec.event.component()));
        // Every line is a flat JSON object carrying the closed schema.
        let line = record_to_json(rec);
        assert!(line.starts_with("{\"seq\":"), "{line}");
        assert!(line.contains(&format!("\"kind\":\"{}\"", rec.event.kind())), "{line}");
        assert!(line.contains(&format!("\"component\":\"{}\"", rec.event.component())), "{line}");
    }
}

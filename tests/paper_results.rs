//! Regression tests for the paper's four headline results (§6.2
//! Conclusion), at reduced durations so the suite stays fast:
//!
//! 1. EDF scheduling reduces wasted processing (Figure 3).
//! 2. Global resource-share accounting reduces share violation (Figure 4).
//! 3. Job-fetch hysteresis reduces scheduler RPCs per job (Figure 5).
//! 4. In scenarios with long jobs, a longer averaging half-life reduces
//!    resource share violation (Figure 6).

use boinc_policy_emu::client::{ClientConfig, FetchPolicy, JobSchedPolicy};
use boinc_policy_emu::core::{Emulator, EmulatorConfig};
use boinc_policy_emu::scenarios::{scenario1, scenario2, scenario3, scenario4_sized};
use boinc_policy_emu::types::SimDuration;

fn days(d: f64) -> EmulatorConfig {
    EmulatorConfig { duration: SimDuration::from_days(d), ..Default::default() }
}

#[test]
fn figure3_edf_reduces_wasted_processing() {
    // Mid-sweep point: slack = 400 s.
    let scenario = || scenario1(SimDuration::from_secs(1400.0));
    let wrr = Emulator::new(
        scenario(),
        ClientConfig { sched_policy: JobSchedPolicy::WRR, ..Default::default() },
        days(3.0),
    )
    .run();
    let edf = Emulator::new(
        scenario(),
        ClientConfig { sched_policy: JobSchedPolicy::LOCAL, ..Default::default() },
        days(3.0),
    )
    .run();
    assert!(
        edf.merit.wasted_fraction < 0.6 * wrr.merit.wasted_fraction,
        "EDF {:.4} vs WRR {:.4}",
        edf.merit.wasted_fraction,
        wrr.merit.wasted_fraction
    );
    // WRR wastes roughly the tight project's half of the processing.
    assert!(wrr.merit.wasted_fraction > 0.3, "WRR {:.4}", wrr.merit.wasted_fraction);
}

#[test]
fn figure3_zero_slack_hurts_everyone() {
    let scenario = || scenario1(SimDuration::from_secs(1000.0));
    for policy in [JobSchedPolicy::WRR, JobSchedPolicy::LOCAL] {
        let r = Emulator::new(
            scenario(),
            ClientConfig { sched_policy: policy, ..Default::default() },
            days(2.0),
        )
        .run();
        assert!(
            r.merit.wasted_fraction > 0.15,
            "{}: zero slack must waste, got {:.4}",
            policy.name(),
            r.merit.wasted_fraction
        );
    }
}

#[test]
fn figure4_global_accounting_reduces_share_violation() {
    let local = Emulator::new(
        scenario2(),
        ClientConfig { sched_policy: JobSchedPolicy::LOCAL, ..Default::default() },
        days(3.0),
    )
    .run();
    let global = Emulator::new(
        scenario2(),
        ClientConfig { sched_policy: JobSchedPolicy::GLOBAL, ..Default::default() },
        days(3.0),
    )
    .run();
    assert!(
        global.merit.share_violation < local.merit.share_violation - 0.05,
        "GLOBAL {:.4} vs LOCAL {:.4}",
        global.merit.share_violation,
        local.merit.share_violation
    );
    // Mechanism check (§5.2): LOCAL splits the CPU evenly, so the
    // CPU-only project gets ~2/14 of total FLOPS; GLOBAL gives it the
    // whole CPU, ~4/14.
    let local_p0 = local.projects[0].used_frac;
    let global_p0 = global.projects[0].used_frac;
    assert!((local_p0 - 2.0 / 14.0).abs() < 0.04, "LOCAL P0 {local_p0:.3}");
    assert!((global_p0 - 4.0 / 14.0).abs() < 0.04, "GLOBAL P0 {global_p0:.3}");
}

#[test]
fn figure5_hysteresis_reduces_rpcs_and_raises_monotony() {
    // 10 projects keeps the test quick; the effect is the same.
    let scenario = || scenario4_sized(10);
    let orig = Emulator::new(
        scenario(),
        ClientConfig { fetch_policy: FetchPolicy::Orig, ..Default::default() },
        days(2.0),
    )
    .run();
    let hyst = Emulator::new(
        scenario(),
        ClientConfig { fetch_policy: FetchPolicy::Hysteresis, ..Default::default() },
        days(2.0),
    )
    .run();
    assert!(
        hyst.merit.rpcs_per_job < 0.5 * orig.merit.rpcs_per_job,
        "HYST {:.3} vs ORIG {:.3} rpcs/job",
        hyst.merit.rpcs_per_job,
        orig.merit.rpcs_per_job
    );
    assert!(
        hyst.merit.monotony > orig.merit.monotony,
        "HYST {:.3} vs ORIG {:.3} monotony",
        hyst.merit.monotony,
        orig.merit.monotony
    );
    // Throughput must not collapse to buy the RPC reduction.
    assert!(hyst.jobs_completed as f64 > 0.9 * orig.jobs_completed as f64);
}

#[test]
fn figure6_longer_half_life_reduces_share_violation() {
    let run = |half_life: f64| {
        Emulator::new(
            scenario3(),
            ClientConfig {
                sched_policy: JobSchedPolicy::GLOBAL,
                rec_half_life: SimDuration::from_secs(half_life),
                ..Default::default()
            },
            days(30.0),
        )
        .run()
    };
    let short = run(1e4);
    let long = run(3e6);
    assert!(
        long.merit.share_violation < short.merit.share_violation - 0.1,
        "A=3e6 {:.4} vs A=1e4 {:.4}",
        long.merit.share_violation,
        short.merit.share_violation
    );
}

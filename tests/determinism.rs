//! Determinism across the full stack — the emulator's reason to exist is
//! exact reproducibility of reported anomalies (§4.3).

use boinc_policy_emu::client::ClientConfig;
use boinc_policy_emu::core::{EmulationResult, Emulator, EmulatorConfig};
use boinc_policy_emu::scenarios::{
    doc_from_scenario, scenario_from_state_file, scenario2, scenario4_sized, PopulationModel,
    PopulationSampler,
};
use boinc_policy_emu::sim::Level;
use boinc_policy_emu::types::SimDuration;

fn fingerprint(r: &EmulationResult) -> (u64, u64, u64, u64, u64) {
    (
        r.jobs_completed,
        r.jobs_missed_deadline,
        r.total_flops_used.to_bits(),
        r.merit.share_violation.to_bits(),
        r.merit.rpcs_per_job.to_bits(),
    )
}

fn cfg(days: f64) -> EmulatorConfig {
    EmulatorConfig { duration: SimDuration::from_days(days), ..Default::default() }
}

#[test]
fn scenario4_is_bit_reproducible() {
    let run = || {
        let r = Emulator::new(scenario4_sized(8), ClientConfig::default(), cfg(1.0)).run();
        fingerprint(&r)
    };
    assert_eq!(run(), run());
}

#[test]
fn sampled_population_is_reproducible() {
    let run = || {
        let mut sampler = PopulationSampler::new(PopulationModel::default(), 99);
        let scenarios = sampler.sample_many(3);
        scenarios
            .into_iter()
            .map(|s| fingerprint(&Emulator::new(s, ClientConfig::default(), cfg(0.5)).run()))
            .collect::<Vec<_>>()
    };
    assert_eq!(run(), run());
}

#[test]
fn statefile_roundtrip_preserves_behaviour() {
    // Export scenario 2 to a state file, re-import it, and check the
    // emulation is bit-identical — the web-form replay path.
    let original = scenario2();
    let xml = doc_from_scenario(&original).render();
    let reimported = scenario_from_state_file(&xml, "scenario2").unwrap();
    let a = Emulator::new(original, ClientConfig::default(), cfg(1.0)).run();
    let b = Emulator::new(reimported, ClientConfig::default(), cfg(1.0)).run();
    assert_eq!(fingerprint(&a), fingerprint(&b));
}

#[test]
fn message_log_is_reproducible() {
    let run = || {
        let c = EmulatorConfig {
            duration: SimDuration::from_hours(8.0),
            log_capacity: 100_000,
            log_level: Level::Debug,
            ..Default::default()
        };
        Emulator::new(scenario2(), ClientConfig::default(), c).run().log.render()
    };
    assert_eq!(run(), run());
}

#[test]
fn log_and_timeline_do_not_perturb_results() {
    // Observability must be free: enabling the log and timeline cannot
    // change a single scheduling decision.
    let bare = Emulator::new(scenario2(), ClientConfig::default(), cfg(1.0)).run();
    let observed = {
        let c = EmulatorConfig {
            duration: SimDuration::from_days(1.0),
            log_capacity: 100_000,
            record_timeline: true,
            ..Default::default()
        };
        Emulator::new(scenario2(), ClientConfig::default(), c).run()
    };
    assert_eq!(fingerprint(&bare), fingerprint(&observed));
}

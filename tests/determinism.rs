//! Determinism across the full stack — the emulator's reason to exist is
//! exact reproducibility of reported anomalies (§4.3).

use boinc_policy_emu::client::ClientConfig;
use boinc_policy_emu::core::{EmulationResult, Emulator, EmulatorConfig};
use boinc_policy_emu::scenarios::{
    doc_from_scenario, scenario2, scenario4_sized, scenario_from_state_file, PopulationModel,
    PopulationSampler,
};
use boinc_policy_emu::sim::Level;
use boinc_policy_emu::types::SimDuration;

fn fingerprint(r: &EmulationResult) -> (u64, u64, u64, u64, u64) {
    (
        r.jobs_completed,
        r.jobs_missed_deadline,
        r.total_flops_used.to_bits(),
        r.merit.share_violation.to_bits(),
        r.merit.rpcs_per_job.to_bits(),
    )
}

fn cfg(days: f64) -> EmulatorConfig {
    EmulatorConfig { duration: SimDuration::from_days(days), ..Default::default() }
}

#[test]
fn scenario4_is_bit_reproducible() {
    let run = || {
        let r = Emulator::new(scenario4_sized(8), ClientConfig::default(), cfg(1.0)).run();
        fingerprint(&r)
    };
    assert_eq!(run(), run());
}

#[test]
fn sampled_population_is_reproducible() {
    let run = || {
        let mut sampler = PopulationSampler::new(PopulationModel::default(), 99);
        let scenarios = sampler.sample_many(3);
        scenarios
            .into_iter()
            .map(|s| fingerprint(&Emulator::new(s, ClientConfig::default(), cfg(0.5)).run()))
            .collect::<Vec<_>>()
    };
    assert_eq!(run(), run());
}

#[test]
fn statefile_roundtrip_preserves_behaviour() {
    // Export scenario 2 to a state file, re-import it, and check the
    // emulation is bit-identical — the web-form replay path.
    let original = scenario2();
    let xml = doc_from_scenario(&original).render();
    let reimported = scenario_from_state_file(&xml, "scenario2").unwrap();
    let a = Emulator::new(original, ClientConfig::default(), cfg(1.0)).run();
    let b = Emulator::new(reimported, ClientConfig::default(), cfg(1.0)).run();
    assert_eq!(fingerprint(&a), fingerprint(&b));
}

#[test]
fn message_log_is_reproducible() {
    let run = || {
        let c = EmulatorConfig {
            duration: SimDuration::from_hours(8.0),
            log_capacity: 100_000,
            log_level: Level::Debug,
            ..Default::default()
        };
        Emulator::new(scenario2(), ClientConfig::default(), c).run().log.render()
    };
    assert_eq!(run(), run());
}

#[test]
fn log_and_timeline_do_not_perturb_results() {
    // Observability must be free: enabling the log and timeline cannot
    // change a single scheduling decision.
    let bare = Emulator::new(scenario2(), ClientConfig::default(), cfg(1.0)).run();
    let observed = {
        let c = EmulatorConfig {
            duration: SimDuration::from_days(1.0),
            log_capacity: 100_000,
            record_timeline: true,
            ..Default::default()
        };
        Emulator::new(scenario2(), ClientConfig::default(), c).run()
    };
    assert_eq!(fingerprint(&bare), fingerprint(&observed));
}

#[test]
fn traced_runs_match_untraced_at_every_thread_count() {
    // The trace/metrics/profile layer is observation-only: enabling a
    // trace buffer and the profiler must not move a single bit of any
    // run's outcome, serial or parallel. Fingerprints here use the full
    // `bit_fingerprint` (which deliberately excludes the observability
    // fields) so a traced run and an untraced run can be compared at all.
    use boinc_policy_emu::controller::{run_all, RunSpec};

    let specs = |traced: bool| -> Vec<RunSpec> {
        let emu = EmulatorConfig {
            duration: SimDuration::from_days(0.5),
            trace_capacity: if traced { 500_000 } else { 0 },
            profile: traced,
            ..Default::default()
        };
        (0..6u32)
            .map(|i| {
                RunSpec::new(format!("run{i}"), scenario4_sized(3 + i), ClientConfig::default())
                    .with_emulator(emu.clone())
            })
            .collect()
    };

    let baseline: Vec<u64> =
        run_all(specs(false), 1).into_iter().map(|(_, r)| r.bit_fingerprint()).collect();
    for threads in [1, 2, 8] {
        let traced = run_all(specs(true), threads);
        for (i, (label, r)) in traced.iter().enumerate() {
            assert_eq!(
                r.bit_fingerprint(),
                baseline[i],
                "{label} diverged under tracing at {threads} threads"
            );
            assert!(r.trace.emitted() > 0, "{label} traced nothing at {threads} threads");
            assert!(r.profile.is_some(), "{label} lost its profile at {threads} threads");
        }
    }
}

#[test]
fn fault_injected_emulation_is_bit_reproducible() {
    // The fault-injection subsystem draws from dedicated named RNG
    // streams, so a faulty run is exactly as reproducible as a clean one:
    // same seed, same crash times, same lost RPCs, same metrics.
    use boinc_policy_emu::core::FaultConfig;
    let run = || {
        let mut faults = FaultConfig::with_failure_rate(0.15);
        faults.crash_mtbf = Some(SimDuration::from_hours(6.0));
        let c =
            EmulatorConfig { duration: SimDuration::from_days(1.0), faults, ..Default::default() };
        let r = Emulator::new(scenario2(), ClientConfig::default(), c).run();
        (
            fingerprint(&r),
            r.faults.transient_rpc_failures,
            r.faults.transfer_failures,
            r.faults.crashes,
            r.faults.jobs_errored,
            r.faults.fault_wasted_fraction.to_bits(),
            r.faults.mean_recovery_secs.to_bits(),
        )
    };
    assert_eq!(run(), run());
}

#[test]
fn zero_rate_faults_are_bit_identical_to_no_faults() {
    // The zero-fault identity: a config with every rate at zero must not
    // create (or draw from) any fault stream, so the emulation is
    // bit-identical to one that never heard of faults.
    use boinc_policy_emu::core::FaultConfig;
    let plain = Emulator::new(scenario2(), ClientConfig::default(), cfg(1.0)).run();
    let zeroed = {
        let c = EmulatorConfig {
            duration: SimDuration::from_days(1.0),
            faults: FaultConfig::with_failure_rate(0.0),
            ..Default::default()
        };
        Emulator::new(scenario2(), ClientConfig::default(), c).run()
    };
    assert_eq!(fingerprint(&plain), fingerprint(&zeroed));
    assert!(!zeroed.faults.any(), "no fault metrics may accrue at rate 0");
}

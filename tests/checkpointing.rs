//! Checkpoint and memory-residence semantics end-to-end (§2.3, §3.3):
//! rollback waste must respond to checkpoint frequency and the
//! leave-apps-in-memory preference exactly as the model says.

use boinc_policy_emu::client::{ClientConfig, JobSchedPolicy};
use boinc_policy_emu::core::{Emulator, EmulatorConfig, Scenario, ScenarioBuilder};
use boinc_policy_emu::types::{AppClass, Hardware, Preferences, ProjectSpec, SimDuration};

/// A preemption-heavy scenario: tight-deadline jobs keep displacing a
/// long-running job, forcing rollbacks when it is not kept in memory.
fn contended(checkpoint_secs: Option<f64>, leave_in_memory: bool) -> Scenario {
    ScenarioBuilder::new("ckpt", Hardware::cpu_only(1, 1e9))
        .seed(67)
        .prefs(Preferences {
            work_buf_min: SimDuration::from_secs(900.0),
            work_buf_extra: SimDuration::from_secs(900.0),
            leave_apps_in_memory: leave_in_memory,
            ..Default::default()
        })
        .project(
            ProjectSpec::new(0, "tight", 100.0).with_app(
                AppClass::cpu(0, SimDuration::from_secs(600.0), SimDuration::from_secs(1200.0))
                    .with_cv(0.0),
            ),
        )
        .project(
            ProjectSpec::new(1, "long", 100.0).with_app(
                AppClass::cpu(1, SimDuration::from_secs(20_000.0), SimDuration::from_days(4.0))
                    .with_cv(0.0)
                    .with_checkpoint(checkpoint_secs.map(SimDuration::from_secs)),
            ),
        )
        .build_unchecked()
}

fn run(s: Scenario) -> boinc_policy_emu::core::EmulationResult {
    let cfg = EmulatorConfig { duration: SimDuration::from_days(1.0), ..Default::default() };
    let client = ClientConfig { sched_policy: JobSchedPolicy::LOCAL, ..Default::default() };
    Emulator::new(s, client, cfg).run()
}

#[test]
fn leave_in_memory_eliminates_rollback_waste() {
    let rollback = run(contended(Some(600.0), false));
    let resident = run(contended(Some(600.0), true));
    // Both make progress on both projects.
    assert!(rollback.jobs_completed > 0 && resident.jobs_completed > 0);
    // With apps left in memory, preemption loses nothing; with 10-minute
    // checkpoints and frequent preemption, waste accumulates.
    assert!(
        resident.merit.wasted_fraction < rollback.merit.wasted_fraction,
        "resident {:.4} vs rollback {:.4}",
        resident.merit.wasted_fraction,
        rollback.merit.wasted_fraction
    );
}

#[test]
fn finer_checkpoints_reduce_rollback_waste() {
    let coarse = run(contended(Some(3000.0), false));
    let fine = run(contended(Some(60.0), false));
    assert!(
        fine.merit.wasted_fraction < coarse.merit.wasted_fraction,
        "fine {:.4} vs coarse {:.4}",
        fine.merit.wasted_fraction,
        coarse.merit.wasted_fraction
    );
}

#[test]
fn never_checkpointing_app_can_starve_itself() {
    // §6.2: "model applications that checkpoint infrequently or never".
    // A 20000 s non-checkpointing job that gets preempted every ~1200 s
    // restarts from zero each time: it may never finish, and its lost
    // work shows up as waste.
    let r = run(contended(None, false));
    let long = &r.projects[1];
    let coarse = run(contended(Some(600.0), false));
    assert!(
        long.jobs_completed <= coarse.projects[1].jobs_completed,
        "non-checkpointing {} vs checkpointing {}",
        long.jobs_completed,
        coarse.projects[1].jobs_completed
    );
    assert!(
        r.merit.wasted_fraction > coarse.merit.wasted_fraction,
        "no-ckpt {:.4} vs ckpt {:.4}",
        r.merit.wasted_fraction,
        coarse.merit.wasted_fraction
    );
}

#[test]
fn uncheckpointed_running_job_keeps_the_cpu() {
    // The §3.3 precedence rule end-to-end: with an enormous checkpoint
    // period the running job is never preemptable mid-run, so tight jobs
    // wait for completions; with quick checkpoints they preempt at the
    // next boundary. Both must still complete work, but the protected
    // variant misses more deadlines.
    let protected = run(contended(Some(30_000.0), false)); // > job length
    let preemptible = run(contended(Some(60.0), false));
    assert!(
        protected.jobs_missed_deadline >= preemptible.jobs_missed_deadline,
        "protected {} vs preemptible {}",
        protected.jobs_missed_deadline,
        preemptible.jobs_missed_deadline
    );
}

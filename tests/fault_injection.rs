//! End-to-end fault-injection behavior: graceful degradation, crash
//! recovery, and transfer give-up — the acceptance criteria of the
//! robustness subsystem.

use boinc_policy_emu::client::{ClientConfig, NetworkModel};
use boinc_policy_emu::core::{EmulationResult, Emulator, EmulatorConfig, FaultConfig, Scenario};
use boinc_policy_emu::faults::RetryPolicy;
use boinc_policy_emu::scenarios::scenario2;
use boinc_policy_emu::types::SimDuration;

/// Scenario 2 with real file transfers (4 MB in / 1 MB out at 1 MB/s), so
/// the transfer-fault path is exercised; the paper scenarios model instant
/// transfers.
fn scenario_with_files() -> Scenario {
    let mut s = scenario2();
    for p in &mut s.projects {
        for a in &mut p.apps {
            a.input_bytes = 4e6;
            a.output_bytes = 1e6;
        }
    }
    s.network = Some(NetworkModel::symmetric(1e6));
    s
}

fn run_at(rate: f64, transfer_retry: Option<RetryPolicy>) -> EmulationResult {
    let mut faults = FaultConfig::with_failure_rate(rate);
    if let Some(p) = transfer_retry {
        faults.transfer_retry = p;
    }
    let cfg =
        EmulatorConfig { duration: SimDuration::from_days(1.0), faults, ..Default::default() };
    Emulator::new(scenario_with_files(), ClientConfig::default(), cfg).run()
}

#[test]
fn degradation_is_monotone_in_failure_rate() {
    // Higher transient failure rates must cost more RPCs per delivered job
    // and inject strictly more faults — but never panic or deadlock.
    let results: Vec<EmulationResult> = [0.0, 0.2, 0.5].iter().map(|&r| run_at(r, None)).collect();
    for w in results.windows(2) {
        let (lo, hi) = (&w[0], &w[1]);
        assert!(
            hi.faults.transient_rpc_failures > lo.faults.transient_rpc_failures,
            "RPC fault count must rise with the rate: {} !> {}",
            hi.faults.transient_rpc_failures,
            lo.faults.transient_rpc_failures
        );
        assert!(
            hi.faults.transfer_failures > lo.faults.transfer_failures,
            "transfer fault count must rise with the rate: {} !> {}",
            hi.faults.transfer_failures,
            lo.faults.transfer_failures
        );
        assert!(
            hi.merit.rpcs_per_job >= lo.merit.rpcs_per_job,
            "RPCs/job must not improve under faults: {} < {}",
            hi.merit.rpcs_per_job,
            lo.merit.rpcs_per_job
        );
        assert!(hi.jobs_completed > 0, "emulation must still make progress");
    }
    assert!(
        results[2].merit.rpcs_per_job > results[0].merit.rpcs_per_job,
        "a 50% loss rate must measurably inflate RPCs/job"
    );
}

#[test]
fn transfer_give_up_errors_jobs_and_wastes_their_flops() {
    // A merciless retry policy (2 attempts) under a high failure rate must
    // error some jobs end-to-end: client task errored, server notified,
    // and the spent flops attributed to fault waste.
    let harsh = RetryPolicy { give_up_after: Some(2), ..RetryPolicy::TRANSFER };
    let r = run_at(0.6, Some(harsh));
    assert!(r.faults.jobs_errored > 0, "60% failure x 2 attempts must kill some jobs");
    assert!(r.faults.fault_wasted_fraction >= 0.0);
    assert!(r.jobs_completed > 0, "most jobs must still complete");
    // Errored jobs that had run accrue fault-attributable waste; at the
    // very least the counter-side must be consistent.
    assert!(r.faults.any());
    // And at rate 0 with the same harsh policy nothing errors.
    let clean = run_at(0.0, Some(harsh));
    assert_eq!(clean.faults.jobs_errored, 0);
    assert!(!clean.faults.any());
}

#[test]
fn crashes_recover_and_are_accounted() {
    // Frequent crashes (2 h MTBF over 1 day ≈ 12 crashes): progress is
    // rolled back to checkpoints, recovery times are measured, and the
    // emulation still completes jobs.
    let mut faults = FaultConfig::OFF;
    faults.crash_mtbf = Some(SimDuration::from_hours(2.0));
    let cfg =
        EmulatorConfig { duration: SimDuration::from_days(1.0), faults, ..Default::default() };
    let r = Emulator::new(scenario_with_files(), ClientConfig::default(), cfg).run();
    assert!(r.faults.crashes > 3, "2 h MTBF over 24 h: got {} crashes", r.faults.crashes);
    assert!(r.jobs_completed > 0);
    assert!(r.faults.recoveries > 0, "rolled-back tasks must recover");
    assert!(r.faults.mean_recovery_secs > 0.0);
    // Crash losses are fault-attributed waste.
    assert!(r.faults.fault_wasted_fraction > 0.0, "crash rollbacks must register as waste");
}

#[test]
fn faulty_report_renders_fault_section() {
    let r = run_at(0.3, None);
    let report = format!("{r}");
    assert!(report.contains("injected faults:"), "{report}");
    assert!(report.contains("transient RPC failures"), "{report}");
    // A clean run must not mention faults at all.
    let clean = run_at(0.0, None);
    let report = format!("{clean}");
    assert!(!report.contains("injected faults"), "{report}");
}

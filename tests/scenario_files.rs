//! Golden-file tests for the committed JSON scenario specs: every file
//! under `scenarios/` must parse, validate, and reprint canonically, and
//! the four paper scenarios must be *byte-identical* to their builtin
//! constructors — same canonical JSON, same emulation bit fingerprint.

use boinc_policy_emu::client::ClientConfig;
use boinc_policy_emu::core::spec::ScenarioSpec;
use boinc_policy_emu::core::{Emulator, EmulatorConfig, Scenario};
use boinc_policy_emu::scenarios::{scenario2, scenario3, scenario4, ScenarioSource};
use boinc_policy_emu::types::SimDuration;
use std::path::{Path, PathBuf};

fn scenarios_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("scenarios")
}

fn read(name: &str) -> String {
    let path = scenarios_dir().join(name);
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {}: {e}", path.display()))
}

fn fingerprint(s: Scenario) -> u64 {
    let cfg = EmulatorConfig { duration: SimDuration::from_hours(12.0), ..Default::default() };
    Emulator::new(s, ClientConfig::default(), cfg).run().bit_fingerprint()
}

/// The committed paper-scenario files are exactly the canonical dump of
/// the builtin constructors: golden at the byte level.
#[test]
fn paper_scenario_files_are_canonical_dumps_of_builtins() {
    for name in ["scenario1", "scenario2", "scenario3", "scenario4"] {
        let builtin = ScenarioSource::parse(&format!("builtin:{name}"))
            .load()
            .unwrap_or_else(|e| panic!("builtin {name}: {e}"))
            .scenario;
        let golden = ScenarioSpec::from_scenario(&builtin).to_canonical_json();
        assert_eq!(read(&format!("{name}.json")), golden, "{name}.json drifted from builtin");
    }
}

/// Loading the JSON file drives the emulator to the same bit fingerprint
/// as the builtin constructor.
#[test]
fn paper_scenario_files_emulate_bit_identically() {
    for (name, builtin) in
        [("scenario2", scenario2()), ("scenario3", scenario3()), ("scenario4", scenario4())]
    {
        let (loaded, faults) = ScenarioSpec::parse(&read(&format!("{name}.json")))
            .unwrap_or_else(|e| panic!("{name}.json: {e}"))
            .build()
            .unwrap_or_else(|e| panic!("{name}.json: {e}"));
        assert!(faults.is_none(), "paper scenarios carry no fault overlay");
        assert_eq!(fingerprint(loaded), fingerprint(builtin), "{name}.json diverged");
    }
}

/// Every committed scenario file — including the new families — parses,
/// validates, and is a fixed point of the canonical writer.
#[test]
fn all_scenario_files_validate_and_are_print_stable() {
    let mut seen = 0;
    for entry in std::fs::read_dir(scenarios_dir()).expect("scenarios/ exists") {
        let path = entry.unwrap().path();
        if path.extension().is_none_or(|e| e != "json") {
            continue;
        }
        seen += 1;
        let text = std::fs::read_to_string(&path).unwrap();
        let spec = ScenarioSpec::parse(&text).unwrap_or_else(|e| panic!("{}: {e}", path.display()));
        assert_eq!(spec.to_canonical_json(), text, "{} is not canonical", path.display());
        spec.build().unwrap_or_else(|e| panic!("{}: {e}", path.display()));
    }
    assert!(seen >= 7, "expected the 4 paper + 3 family scenario files, found {seen}");
}

/// The unreliable-hosts family layers a fault overlay; it must survive
/// the load path with its faults intact.
#[test]
fn unreliable_hosts_overlay_loads_with_faults() {
    let (_, faults) = ScenarioSpec::parse(&read("unreliable_hosts.json")).unwrap().build().unwrap();
    let faults = faults.expect("unreliable_hosts.json declares faults");
    assert!(faults.rpc_fail_prob > 0.0);
    assert!(faults.crash_mtbf.is_some());
}

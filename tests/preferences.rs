//! End-to-end preference enforcement (§2.2): time-of-day windows, CPU
//! count limits, user-activity suspension, and memory limits must shape
//! the emulated behaviour, not just the policy inputs.

use boinc_policy_emu::avail::{AvailSpec, OnOffSpec};
use boinc_policy_emu::client::ClientConfig;
use boinc_policy_emu::core::{Emulator, EmulatorConfig, Scenario, ScenarioBuilder};
use boinc_policy_emu::types::{
    AppClass, DailyWindow, Hardware, Preferences, ProcType, ProjectSpec, SimDuration,
};

fn base_scenario(prefs: Preferences) -> Scenario {
    ScenarioBuilder::new("prefs", Hardware::cpu_only(4, 1e9))
        .seed(11)
        .prefs(prefs)
        .project(
            ProjectSpec::new(0, "p", 100.0).with_app(
                AppClass::cpu(0, SimDuration::from_secs(1000.0), SimDuration::from_days(2.0))
                    .with_cv(0.0),
            ),
        )
        .build_unchecked()
}

fn cfg(days: f64) -> EmulatorConfig {
    EmulatorConfig { duration: SimDuration::from_days(days), ..Default::default() }
}

#[test]
fn compute_window_halves_throughput() {
    let always =
        Emulator::new(base_scenario(Preferences::default()), ClientConfig::default(), cfg(2.0))
            .run();
    let windowed = Emulator::new(
        base_scenario(Preferences {
            compute_window: Some(DailyWindow::new(0.0, 12.0)),
            ..Default::default()
        }),
        ClientConfig::default(),
        cfg(2.0),
    )
    .run();
    let ratio = windowed.jobs_completed as f64 / always.jobs_completed as f64;
    assert!((ratio - 0.5).abs() < 0.07, "12h window should halve jobs, ratio {ratio:.3}");
    assert!((windowed.available_fraction - 0.5).abs() < 0.02);
}

#[test]
fn max_ncpus_limits_parallelism() {
    let full =
        Emulator::new(base_scenario(Preferences::default()), ClientConfig::default(), cfg(1.0))
            .run();
    let half = Emulator::new(
        base_scenario(Preferences { max_ncpus_frac: 0.5, ..Default::default() }),
        ClientConfig::default(),
        cfg(1.0),
    )
    .run();
    let ratio = half.jobs_completed as f64 / full.jobs_completed as f64;
    assert!((ratio - 0.5).abs() < 0.05, "50% CPUs -> ~50% jobs, ratio {ratio:.3}");
    // Idle fraction counts the disallowed CPUs as idle capacity.
    assert!(half.merit.idle_fraction > 0.45, "idle {:.3}", half.merit.idle_fraction);
}

#[test]
fn gpu_suspension_while_user_active() {
    let mk = |gpu_if_active: bool| {
        let hw = Hardware::cpu_only(1, 1e9).with_group(ProcType::NvidiaGpu, 1, 1e10);
        let mut s = ScenarioBuilder::new("gpu-prefs", hw)
            .seed(13)
            .prefs(Preferences { gpu_if_user_active: gpu_if_active, ..Default::default() })
            .project(ProjectSpec::new(0, "g", 100.0).with_app(AppClass::gpu(
                0,
                ProcType::NvidiaGpu,
                SimDuration::from_secs(1000.0),
                SimDuration::from_days(2.0),
            )))
            .build_unchecked();
        // User active half the time in 1-hour stretches.
        s.avail = AvailSpec {
            host: OnOffSpec::AlwaysOn,
            user_active: OnOffSpec::duty_cycle(0.5, SimDuration::from_hours(2.0)),
            network: OnOffSpec::AlwaysOn,
        };
        s
    };
    let suspended = Emulator::new(mk(false), ClientConfig::default(), cfg(2.0)).run();
    let allowed = Emulator::new(mk(true), ClientConfig::default(), cfg(2.0)).run();
    let ratio = suspended.jobs_completed as f64 / allowed.jobs_completed.max(1) as f64;
    assert!(
        (0.35..0.75).contains(&ratio),
        "GPU suspended ~half the time: ratio {ratio:.3} ({} vs {})",
        suspended.jobs_completed,
        allowed.jobs_completed
    );
}

#[test]
fn memory_limit_serializes_big_jobs() {
    // Two 3 GB jobs cannot run together on a 4 GB host at the 90% idle
    // limit; with big RAM they can.
    let mk = |mem: f64| {
        ScenarioBuilder::new("mem", Hardware::cpu_only(2, 1e9).with_mem(mem))
            .seed(17)
            .project(
                ProjectSpec::new(0, "fat", 100.0).with_app(
                    AppClass::cpu(0, SimDuration::from_secs(1000.0), SimDuration::from_days(2.0))
                        .with_cv(0.0)
                        .with_working_set(3e9),
                ),
            )
            .build_unchecked()
    };
    let small = Emulator::new(mk(4e9), ClientConfig::default(), cfg(1.0)).run();
    let big = Emulator::new(mk(32e9), ClientConfig::default(), cfg(1.0)).run();
    let ratio = small.jobs_completed as f64 / big.jobs_completed as f64;
    assert!(
        (0.4..0.62).contains(&ratio),
        "RAM limit should halve parallelism: {} vs {} jobs",
        small.jobs_completed,
        big.jobs_completed
    );
}

#[test]
fn intermittent_host_tracks_duty_cycle() {
    let mut s = base_scenario(Preferences::default());
    s.avail.host = OnOffSpec::duty_cycle(0.6, SimDuration::from_hours(6.0));
    let r = Emulator::new(s, ClientConfig::default(), cfg(4.0)).run();
    assert!(
        (r.available_fraction - 0.6).abs() < 0.1,
        "available {:.3} vs duty cycle 0.6",
        r.available_fraction
    );
    assert!(r.jobs_completed > 0);
}

//! Property-based tests over randomly generated scenarios: whatever the
//! host/project/policy combination, the emulator's conservation laws and
//! metric ranges must hold.

use boinc_policy_emu::client::{ClientConfig, FetchPolicy, JobSchedPolicy};
use boinc_policy_emu::core::{Emulator, EmulatorConfig, Scenario};
use boinc_policy_emu::types::{
    AppClass, Hardware, Preferences, ProcType, ProjectSpec, SimDuration,
};
use proptest::prelude::*;

#[derive(Debug, Clone)]
struct ScenarioParams {
    ncpus: u32,
    cpu_flops: f64,
    has_gpu: bool,
    nprojects: usize,
    runtimes: Vec<f64>,
    slack_factors: Vec<f64>,
    shares: Vec<f64>,
    seed: u64,
    sched: JobSchedPolicy,
    fetch: FetchPolicy,
}

fn params() -> impl Strategy<Value = ScenarioParams> {
    (
        1u32..=4,
        1e9f64..4e9,
        any::<bool>(),
        1usize..=4,
        proptest::collection::vec(200.0f64..4000.0, 4),
        proptest::collection::vec(1.5f64..50.0, 4),
        proptest::collection::vec(10.0f64..400.0, 4),
        any::<u64>(),
        prop_oneof![
            Just(JobSchedPolicy::WRR),
            Just(JobSchedPolicy::LOCAL),
            Just(JobSchedPolicy::GLOBAL),
        ],
        prop_oneof![Just(FetchPolicy::Orig), Just(FetchPolicy::Hysteresis)],
    )
        .prop_map(
            |(
                ncpus,
                cpu_flops,
                has_gpu,
                nprojects,
                runtimes,
                slack_factors,
                shares,
                seed,
                sched,
                fetch,
            )| {
                ScenarioParams {
                    ncpus,
                    cpu_flops,
                    has_gpu,
                    nprojects,
                    runtimes,
                    slack_factors,
                    shares,
                    seed,
                    sched,
                    fetch,
                }
            },
        )
}

fn build(p: &ScenarioParams) -> Scenario {
    let mut hw = Hardware::cpu_only(p.ncpus, p.cpu_flops);
    if p.has_gpu {
        hw = hw.with_group(ProcType::NvidiaGpu, 1, p.cpu_flops * 8.0);
    }
    let mut b = boinc_policy_emu::core::ScenarioBuilder::new("prop", hw)
        .seed(p.seed)
        .prefs(Preferences::default());
    for i in 0..p.nprojects {
        let runtime = p.runtimes[i % p.runtimes.len()];
        let latency = runtime * p.slack_factors[i % p.slack_factors.len()];
        let mut spec = ProjectSpec::new(i as u32, format!("p{i}"), p.shares[i % p.shares.len()])
            .with_app(
                AppClass::cpu(
                    2 * i as u32,
                    SimDuration::from_secs(runtime),
                    SimDuration::from_secs(latency),
                )
                .with_cv(0.1),
            );
        if p.has_gpu && i % 2 == 0 {
            spec = spec.with_app(
                AppClass::gpu(
                    2 * i as u32 + 1,
                    ProcType::NvidiaGpu,
                    SimDuration::from_secs(runtime / 4.0),
                    SimDuration::from_secs(latency),
                )
                .with_cv(0.1),
            );
        }
        b = b.project(spec);
    }
    b.build_unchecked()
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24 })]

    #[test]
    fn emulation_invariants(p in params()) {
        let scenario = build(&p);
        prop_assert!(scenario.validate().is_ok());
        let client = ClientConfig { sched_policy: p.sched, fetch_policy: p.fetch, ..Default::default() };
        let cfg = EmulatorConfig {
            duration: SimDuration::from_hours(6.0),
            ..Default::default()
        };
        let r = Emulator::new(scenario, client, cfg).run();

        // Metric ranges.
        let m = &r.merit;
        prop_assert!((0.0..=1.0).contains(&m.idle_fraction), "idle {}", m.idle_fraction);
        prop_assert!((0.0..=1.0).contains(&m.wasted_fraction), "wasted {}", m.wasted_fraction);
        prop_assert!((0.0..=1.0).contains(&m.share_violation), "viol {}", m.share_violation);
        prop_assert!((0.0..=1.0).contains(&m.monotony), "monotony {}", m.monotony);
        prop_assert!(m.rpcs_per_job >= 0.0);

        // Conservation: used fractions sum to 1 (when anything ran) and
        // per-project completions sum to the total.
        let used_sum: f64 = r.projects.iter().map(|p| p.used_frac).sum();
        if r.total_flops_used > 0.0 {
            prop_assert!((used_sum - 1.0).abs() < 1e-6, "used fracs sum {used_sum}");
        }
        let jobs_sum: u64 = r.projects.iter().map(|p| p.jobs_completed).sum();
        prop_assert_eq!(jobs_sum, r.jobs_completed);

        // Capacity: can't deliver more FLOPS than the host has.
        let capacity = build(&p).hardware.total_peak_flops() * 6.0 * 3600.0;
        prop_assert!(r.total_flops_used <= capacity * (1.0 + 1e-9),
            "used {} > capacity {}", r.total_flops_used, capacity);

        // A fully-available host with unlimited work shouldn't idle much
        // unless jobs are bigger than memory allows (not generated here).
        prop_assert!(r.available_fraction > 0.999);
    }

    #[test]
    fn determinism_under_random_configs(p in params()) {
        let client = ClientConfig { sched_policy: p.sched, fetch_policy: p.fetch, ..Default::default() };
        let cfg = EmulatorConfig { duration: SimDuration::from_hours(2.0), ..Default::default() };
        let a = Emulator::new(build(&p), client, cfg.clone()).run();
        let b = Emulator::new(build(&p), client, cfg).run();
        prop_assert_eq!(a.jobs_completed, b.jobs_completed);
        prop_assert_eq!(a.total_flops_used.to_bits(), b.total_flops_used.to_bits());
    }
}

// --- Retry/backoff properties (fault-injection subsystem) ---

use boinc_policy_emu::faults::{RetryPolicy, RetryState};
use boinc_policy_emu::types::SimTime;

proptest! {
    #![proptest_config(ProptestConfig { cases: 64 })]

    /// Any sequence of failures and successes yields delays that are
    /// monotone non-decreasing within a failure streak, always within the
    /// policy's [min, max] caps, and fully deterministic (replaying the
    /// sequence reproduces every deadline bit-for-bit).
    #[test]
    fn backoff_delays_monotone_capped_deterministic(
        outcomes in proptest::collection::vec(any::<bool>(), 1..80),
        jitters in proptest::collection::vec(0.0f64..1.0, 80),
        jitter_amp in 0.0f64..=0.5,
    ) {
        let policy = RetryPolicy { jitter: jitter_amp, ..RetryPolicy::SCHEDULER_RPC };
        let replay = |state: &mut RetryState| -> Vec<u64> {
            let mut deadlines = Vec::new();
            let mut now = SimTime::ZERO;
            for (i, &fail) in outcomes.iter().enumerate() {
                if fail {
                    state.fail(now, &policy, jitters[i]);
                    deadlines.push((state.until.secs() - now.secs()).to_bits());
                    now = state.until; // next attempt when the backoff expires
                } else {
                    state.succeed();
                    deadlines.push(0u64);
                }
            }
            deadlines
        };
        let a = replay(&mut RetryState::new());
        let b = replay(&mut RetryState::new());
        prop_assert_eq!(&a, &b, "same sequence must reproduce identical delays");

        // Per-streak properties on the jitter-free base delay.
        let mut streak = 0u32;
        let mut prev_base = 0.0f64;
        for &fail in &outcomes {
            if fail {
                let base = policy.delay_for(streak, 0.0);
                prop_assert!(base.secs() >= policy.min_delay.secs());
                prop_assert!(base.secs() <= policy.max_delay.secs());
                if streak > 0 {
                    prop_assert!(base.secs() >= prev_base, "delay shrank within a streak");
                }
                prev_base = base.secs();
                streak += 1;
            } else {
                streak = 0;
                prev_base = 0.0;
            }
        }

        // Jittered delays respect the caps for every observed draw.
        for (i, &fail) in outcomes.iter().enumerate() {
            if fail {
                let d = policy.delay_for(i as u32, jitters[i]);
                prop_assert!(d.secs() >= policy.min_delay.secs());
                prop_assert!(d.secs() <= policy.max_delay.secs());
            }
        }
    }

    /// A give-up limit always triggers after exactly `limit` consecutive
    /// failures, never earlier, and a success anywhere resets the count.
    #[test]
    fn give_up_fires_exactly_at_limit(limit in 1u32..12, prefix in 0u32..11) {
        use boinc_policy_emu::faults::RetryVerdict;
        let policy = RetryPolicy {
            give_up_after: Some(limit),
            jitter: 0.0,
            ..RetryPolicy::TRANSFER
        };
        let mut state = RetryState::new();
        let now = SimTime::ZERO;
        // A prefix of failures short of the limit, then one success.
        for i in 0..prefix.min(limit - 1) {
            let v = state.fail(now, &policy, 0.0);
            prop_assert_eq!(v, RetryVerdict::RetryAt(state.until), "gave up early at {}", i);
        }
        state.succeed();
        // Now the full ladder to the limit.
        for i in 1..=limit {
            let v = state.fail(now, &policy, 0.0);
            if i == limit {
                prop_assert_eq!(v, RetryVerdict::GiveUp);
            } else {
                prop_assert_eq!(v, RetryVerdict::RetryAt(state.until));
            }
        }
    }
}

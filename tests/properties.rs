//! Property-based tests over randomly generated scenarios: whatever the
//! host/project/policy combination, the emulator's conservation laws and
//! metric ranges must hold.

use boinc_policy_emu::client::{ClientConfig, FetchPolicy, JobSchedPolicy};
use boinc_policy_emu::core::{Emulator, EmulatorConfig, Scenario};
use boinc_policy_emu::types::{
    AppClass, Hardware, Preferences, ProcType, ProjectSpec, SimDuration,
};
use proptest::prelude::*;

#[derive(Debug, Clone)]
struct ScenarioParams {
    ncpus: u32,
    cpu_flops: f64,
    has_gpu: bool,
    nprojects: usize,
    runtimes: Vec<f64>,
    slack_factors: Vec<f64>,
    shares: Vec<f64>,
    seed: u64,
    sched: JobSchedPolicy,
    fetch: FetchPolicy,
}

fn params() -> impl Strategy<Value = ScenarioParams> {
    (
        1u32..=4,
        1e9f64..4e9,
        any::<bool>(),
        1usize..=4,
        proptest::collection::vec(200.0f64..4000.0, 4),
        proptest::collection::vec(1.5f64..50.0, 4),
        proptest::collection::vec(10.0f64..400.0, 4),
        any::<u64>(),
        prop_oneof![
            Just(JobSchedPolicy::WRR),
            Just(JobSchedPolicy::LOCAL),
            Just(JobSchedPolicy::GLOBAL),
        ],
        prop_oneof![Just(FetchPolicy::Orig), Just(FetchPolicy::Hysteresis)],
    )
        .prop_map(
            |(ncpus, cpu_flops, has_gpu, nprojects, runtimes, slack_factors, shares, seed, sched, fetch)| {
                ScenarioParams {
                    ncpus,
                    cpu_flops,
                    has_gpu,
                    nprojects,
                    runtimes,
                    slack_factors,
                    shares,
                    seed,
                    sched,
                    fetch,
                }
            },
        )
}

fn build(p: &ScenarioParams) -> Scenario {
    let mut hw = Hardware::cpu_only(p.ncpus, p.cpu_flops);
    if p.has_gpu {
        hw = hw.with_group(ProcType::NvidiaGpu, 1, p.cpu_flops * 8.0);
    }
    let mut s = Scenario::new("prop", hw).with_seed(p.seed).with_prefs(Preferences::default());
    for i in 0..p.nprojects {
        let runtime = p.runtimes[i % p.runtimes.len()];
        let latency = runtime * p.slack_factors[i % p.slack_factors.len()];
        let mut spec = ProjectSpec::new(i as u32, format!("p{i}"), p.shares[i % p.shares.len()])
            .with_app(
                AppClass::cpu(
                    2 * i as u32,
                    SimDuration::from_secs(runtime),
                    SimDuration::from_secs(latency),
                )
                .with_cv(0.1),
            );
        if p.has_gpu && i % 2 == 0 {
            spec = spec.with_app(
                AppClass::gpu(
                    2 * i as u32 + 1,
                    ProcType::NvidiaGpu,
                    SimDuration::from_secs(runtime / 4.0),
                    SimDuration::from_secs(latency),
                )
                .with_cv(0.1),
            );
        }
        s = s.with_project(spec);
    }
    s
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    #[test]
    fn emulation_invariants(p in params()) {
        let scenario = build(&p);
        prop_assert!(scenario.validate().is_ok());
        let client = ClientConfig { sched_policy: p.sched, fetch_policy: p.fetch, ..Default::default() };
        let cfg = EmulatorConfig {
            duration: SimDuration::from_hours(6.0),
            ..Default::default()
        };
        let r = Emulator::new(scenario, client, cfg).run();

        // Metric ranges.
        let m = &r.merit;
        prop_assert!((0.0..=1.0).contains(&m.idle_fraction), "idle {}", m.idle_fraction);
        prop_assert!((0.0..=1.0).contains(&m.wasted_fraction), "wasted {}", m.wasted_fraction);
        prop_assert!((0.0..=1.0).contains(&m.share_violation), "viol {}", m.share_violation);
        prop_assert!((0.0..=1.0).contains(&m.monotony), "monotony {}", m.monotony);
        prop_assert!(m.rpcs_per_job >= 0.0);

        // Conservation: used fractions sum to 1 (when anything ran) and
        // per-project completions sum to the total.
        let used_sum: f64 = r.projects.iter().map(|p| p.used_frac).sum();
        if r.total_flops_used > 0.0 {
            prop_assert!((used_sum - 1.0).abs() < 1e-6, "used fracs sum {used_sum}");
        }
        let jobs_sum: u64 = r.projects.iter().map(|p| p.jobs_completed).sum();
        prop_assert_eq!(jobs_sum, r.jobs_completed);

        // Capacity: can't deliver more FLOPS than the host has.
        let capacity = build(&p).hardware.total_peak_flops() * 6.0 * 3600.0;
        prop_assert!(r.total_flops_used <= capacity * (1.0 + 1e-9),
            "used {} > capacity {}", r.total_flops_used, capacity);

        // A fully-available host with unlimited work shouldn't idle much
        // unless jobs are bigger than memory allows (not generated here).
        prop_assert!(r.available_fraction > 0.999);
    }

    #[test]
    fn determinism_under_random_configs(p in params()) {
        let client = ClientConfig { sched_policy: p.sched, fetch_policy: p.fetch, ..Default::default() };
        let cfg = EmulatorConfig { duration: SimDuration::from_hours(2.0), ..Default::default() };
        let a = Emulator::new(build(&p), client, cfg.clone()).run();
        let b = Emulator::new(build(&p), client, cfg).run();
        prop_assert_eq!(a.jobs_completed, b.jobs_completed);
        prop_assert_eq!(a.total_flops_used.to_bits(), b.total_flops_used.to_bits());
    }
}

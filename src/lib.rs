//! Facade crate: re-exports the whole `boinc-policy-emu` stack.
pub use bce_avail as avail;
pub use bce_client as client;
pub use bce_controller as controller;
pub use bce_core as core;
pub use bce_emboinc as emboinc;
pub use bce_faults as faults;
pub use bce_fleet as fleet;
pub use bce_obs as obs;
pub use bce_scenarios as scenarios;
pub use bce_serve as serve;
pub use bce_server as server;
pub use bce_sim as sim;
pub use bce_statefile as statefile;
pub use bce_types as types;
